package systemr_test

// Batched/parallel execution benchmarks: the per-row operator boundary cost
// against the per-batch boundary (tuple- vs batch-at-a-time scan), the three
// join methods head to head on a non-sargable equi-join, and the parallel
// exchange at increasing worker counts. TestBenchExecJSON runs the same
// comparisons once and writes BENCH_exec.json for CI trending; it also
// asserts this PR's acceptance criteria — batching buys >=1.5x on the scan,
// and the hash join beats nested loops on the equi-join.

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"systemr"
	"systemr/internal/workload"
)

const (
	// A plain projection over a multi-page relation: pure per-row boundary
	// overhead, the batched protocol's best case.
	scanQuery = "SELECT SAL FROM EMP"
	// The three-way equi-join with no sargable predicate and no ORDER BY:
	// nothing to prune the scans and no interesting order to ride, so the
	// join method is the whole cost story.
	joinQuery = "SELECT E.NAME, D.DNAME, J.TITLE FROM EMP E, DEPT D, JOB J " +
		"WHERE E.DNO = D.DNO AND E.JOB = J.JOB"
	// A segment scan over the unindexed MANAGER column: parallel-eligible.
	parallelQuery = "SELECT NAME FROM EMP WHERE MANAGER < 100000"
)

func execBenchDB(tb testing.TB, engine systemr.Config) *systemr.DB {
	tb.Helper()
	engine.BufferPages = 4096
	return workload.NewEmpDB(workload.EmpConfig{
		Emps: 4000, Depts: 50, Jobs: 10, Seed: 47, Engine: engine,
	})
}

// warmRun executes q once to load pages and the plan cache.
func warmRun(tb testing.TB, db *systemr.DB, q string) {
	tb.Helper()
	if _, err := db.Query(q); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkExecBatch compares tuple-at-a-time execution (batch size 1: every
// row pays a governor tick, a fetch-delta read, and a timestamp pair at every
// operator boundary) against the default 256-row batches.
func BenchmarkExecBatch(b *testing.B) {
	for _, c := range []struct {
		name string
		size int
	}{{"tuple", 1}, {"batch256", 256}} {
		b.Run(c.name, func(b *testing.B) {
			db := execBenchDB(b, systemr.Config{ExecBatchSize: c.size})
			warmRun(b, db, scanQuery)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(scanQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHashJoin runs the non-sargable three-way equi-join under each
// join-method restriction: nested loops only, merge only, and the full
// three-method search (which picks hash here).
func BenchmarkHashJoin(b *testing.B) {
	for _, c := range []struct {
		name   string
		engine systemr.Config
	}{
		{"nestedloops", systemr.Config{NestedLoopsOnly: true}},
		{"merge", systemr.Config{MergeOnly: true}},
		{"hash", systemr.Config{}},
	} {
		b.Run(c.name, func(b *testing.B) {
			db := execBenchDB(b, c.engine)
			warmRun(b, db, joinQuery)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(joinQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelScan sweeps the exchange's worker count over a
// parallel-eligible segment scan.
func BenchmarkParallelScan(b *testing.B) {
	for _, c := range []struct {
		name string
		dop  int
	}{{"dop1", 1}, {"dop2", 2}, {"dop4", 4}, {"dop8", 8}} {
		b.Run(c.name, func(b *testing.B) {
			db := execBenchDB(b, systemr.Config{DegreeOfParallelism: c.dop})
			warmRun(b, db, parallelQuery)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(parallelQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// execBenchReport is the BENCH_exec.json document.
type execBenchReport struct {
	ScanQuery        string             `json:"scan_query"`
	TupleNsPerOp     float64            `json:"scan_tuple_ns_per_op"`
	BatchNsPerOp     float64            `json:"scan_batch_ns_per_op"`
	BatchSpeedup     float64            `json:"scan_batch_speedup"`
	JoinQuery        string             `json:"join_query"`
	JoinNsPerOp      map[string]float64 `json:"join_ns_per_op"`
	ParallelQuery    string             `json:"parallel_query"`
	ParallelNsPerOp  map[string]float64 `json:"parallel_ns_per_op"`
	ParallelSpeedup8 float64            `json:"parallel_speedup_dop8"`
}

// TestBenchExecJSON measures the three comparisons and writes
// BENCH_exec.json. It asserts the PR's acceptance criteria: batch execution
// at least 1.5x faster than tuple-at-a-time on the scan, and the hash join
// faster than nested loops on the non-sargable equi-join (merge keeps its
// own wins where an interesting order pays — pinned by the plan goldens,
// not timed here).
func TestBenchExecJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark measurement; skipped in -short")
	}
	report := execBenchReport{
		ScanQuery:       scanQuery,
		JoinQuery:       joinQuery,
		ParallelQuery:   parallelQuery,
		JoinNsPerOp:     map[string]float64{},
		ParallelNsPerOp: map[string]float64{},
	}

	const iters = 30
	measure := func(engine systemr.Config, q string) float64 {
		t.Helper()
		db := execBenchDB(t, engine)
		warmRun(t, db, q)
		warmRun(t, db, q)
		ns, err := timePerOp(iters, func() error { _, err := db.Query(q); return err })
		if err != nil {
			t.Fatal(err)
		}
		return ns
	}

	report.TupleNsPerOp = measure(systemr.Config{ExecBatchSize: 1}, scanQuery)
	report.BatchNsPerOp = measure(systemr.Config{ExecBatchSize: 256}, scanQuery)
	report.BatchSpeedup = report.TupleNsPerOp / report.BatchNsPerOp

	// The full search must actually pick hash for the join comparison to
	// mean anything.
	hashDB := execBenchDB(t, systemr.Config{})
	if pl, err := hashDB.Explain(joinQuery); err != nil {
		t.Fatal(err)
	} else if !strings.Contains(pl, "HASHJOIN") {
		t.Fatalf("full search did not pick hash for the equi-join:\n%s", pl)
	}
	report.JoinNsPerOp["nestedloops"] = measure(systemr.Config{NestedLoopsOnly: true}, joinQuery)
	report.JoinNsPerOp["merge"] = measure(systemr.Config{MergeOnly: true}, joinQuery)
	report.JoinNsPerOp["hash"] = measure(systemr.Config{}, joinQuery)

	for _, dop := range []int{1, 2, 4, 8} {
		ns := measure(systemr.Config{DegreeOfParallelism: dop}, parallelQuery)
		report.ParallelNsPerOp[map[int]string{1: "dop1", 2: "dop2", 4: "dop4", 8: "dop8"}[dop]] = ns
	}
	report.ParallelSpeedup8 = report.ParallelNsPerOp["dop1"] / report.ParallelNsPerOp["dop8"]

	if report.BatchSpeedup < 1.5 {
		t.Errorf("batch execution speedup %.2fx below the 1.5x acceptance bar (tuple %.0f ns, batch %.0f ns)",
			report.BatchSpeedup, report.TupleNsPerOp, report.BatchNsPerOp)
	}
	if report.JoinNsPerOp["hash"] >= report.JoinNsPerOp["nestedloops"] {
		t.Errorf("hash join (%.0f ns) not faster than nested loops (%.0f ns) on the non-sargable equi-join",
			report.JoinNsPerOp["hash"], report.JoinNsPerOp["nestedloops"])
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_exec.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_exec.json:\n%s", data)
}

package systemr

// Compiled statements. System R compiled a statement once and ran the
// resulting plan many times: "application programs are compiled once and run
// many times. The cost of optimization is amortized over many runs"
// (Conclusion). Prepare performs parsing, semantic analysis, and access path
// selection once; each Run executes the stored plan.
//
// As in System R, a prepared plan embeds the catalog state of compile time —
// and, as in System R, it is invalidated and recompiled when a dependency
// changes: each Run revalidates the plan's catalog version under the
// statement's locks, and a stale plan (DDL or UPDATE STATISTICS since
// compile) is transparently recompiled from the statement's normalized text.
// The caller never re-Prepares and never executes a stale plan.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"systemr/internal/compile"
	"systemr/internal/exec"
	"systemr/internal/governor"
	"systemr/internal/lock"
	"systemr/internal/sql"
	"systemr/internal/txn"
	"systemr/internal/value"
)

// Stmt is a compiled SELECT statement. It is safe for concurrent use: the
// compiled plan is immutable, and recompilation after a catalog change swaps
// the current-plan pointer under a mutex.
type Stmt struct {
	db   *DB
	text string
	norm string

	mu sync.Mutex
	cp *compile.CompiledPlan
}

// Prepare compiles a SELECT statement: the optimizer runs once, now. When the
// plan cache is enabled the compiled plan is shared with (and revalidated
// through) the cache.
func (db *DB) Prepare(text string) (*Stmt, error) {
	parsed, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel, ok := parsed.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("systemr: Prepare supports SELECT statements, got %T", parsed)
	}
	norm, _ := sql.Normalize(text)
	held := db.locks.Acquire(compile.LockRequests(parsed, !db.cfg.DisableSnapshotReads))
	defer held.Release()
	cp, _, err := db.resolveSelect(nil, norm, "", sel)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, text: text, norm: norm, cp: cp}, nil
}

// current returns the statement's current compiled plan.
func (s *Stmt) current() *compile.CompiledPlan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp
}

// planFor returns a catalog-current plan for this statement, recompiling if
// DDL or a statistics refresh has moved the catalog version since the held
// plan was compiled. Must be called with the statement's locks held (the
// shared catalog lock pins the version through execution). vals are the
// run's host-variable bindings: with the cache enabled they select the cache
// slot, so runs with different binding types keep distinct entries.
func (s *Stmt) planFor(gov *governor.Budget, vals []value.Value) (*compile.CompiledPlan, error) {
	if s.db.plans == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.cp.Version != s.db.cat.Version() {
			cp, err := s.db.compiler.CompileSelectText(gov, s.norm)
			if err != nil {
				return nil, wrapGovErr(err, ExecStats{})
			}
			s.cp = cp
		}
		return s.cp, nil
	}
	cp, _, err := s.db.resolveSelect(gov, s.norm, compile.ArgSig(vals), nil)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cp = cp
	s.mu.Unlock()
	return cp, nil
}

// Run executes the compiled plan (no parsing, no re-optimization unless the
// catalog changed), binding one value per '?' host variable in statement
// order. Accepted argument types: int, int64, float64, string, nil.
func (s *Stmt) Run(args ...any) (*Result, error) {
	return s.RunContext(context.Background(), args...)
}

// RunContext is Run observing ctx: cancellation, deadlines, and the
// configured resource budgets abort execution as in ExecContext.
func (s *Stmt) RunContext(ctx context.Context, args ...any) (res *Result, err error) {
	start := time.Now()
	defer func() { s.db.observeStatement(start, err) }()
	vals, err := hostValues(args)
	if err != nil {
		return nil, err
	}
	if s.db.cfg.StatementTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.db.cfg.StatementTimeout)
		defer cancel()
	}
	held, err := s.db.locks.AcquireContext(ctx, s.current().Locks)
	if err != nil {
		return nil, lockErr(err)
	}
	defer held.Release()
	// Register the run as a reader: it captures a statement snapshot and
	// pins the vacuum horizon for its duration.
	reg := s.db.txns.Begin()
	defer s.db.txns.Finish(reg)
	gov := s.db.newGovernor(ctx)
	cp, err := s.planFor(gov, vals)
	if err != nil {
		return nil, err
	}
	rows, stats, err := exec.RunQueryArgs(s.db.runtime(gov, reg.Snap), cp.Query, vals)
	es := execStatsFrom(stats)
	s.db.setLast(es)
	if err != nil {
		return nil, wrapGovErr(err, es)
	}
	out := make([][]any, len(rows))
	for i, r := range rows {
		out[i] = toNative(r)
	}
	cols := cp.Query.OutNames
	if cols == nil {
		cols = []string{}
	}
	return &Result{Columns: cols, Rows: out}, nil
}

// Explain returns the statement's current compiled plan.
func (s *Stmt) Explain() string { return s.current().Query.Explain() }

// Text returns the original statement text.
func (s *Stmt) Text() string { return s.text }

// Version returns the catalog version the statement's current plan was
// compiled under.
func (s *Stmt) Version() uint64 { return s.current().Version }

// hostValues converts Go arguments to engine values.
func hostValues(args []any) ([]value.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]value.Value, len(args))
	for i, a := range args {
		switch x := a.(type) {
		case nil:
			out[i] = value.Null()
		case int:
			out[i] = value.NewInt(int64(x))
		case int64:
			out[i] = value.NewInt(x)
		case float64:
			out[i] = value.NewFloat(x)
		case string:
			out[i] = value.NewString(x)
		default:
			return nil, fmt.Errorf("systemr: unsupported host argument %d of type %T", i+1, a)
		}
	}
	return out, nil
}

// Rows is a streaming result cursor over a compiled statement — the
// tuple-at-a-time interface application programs used in System R. The
// statement's table locks are held until Close.
type Rows struct {
	db     *DB
	cols   []string
	cursor *exec.Cursor
	held   *lock.Held
	reg    *txn.Reg
	closed bool
}

// Open begins streaming execution of the compiled plan, binding one value
// per '?' host variable. The caller must Close the cursor (or drain it) to
// release the statement's locks.
func (s *Stmt) Open(args ...any) (*Rows, error) {
	return s.OpenContext(context.Background(), args...)
}

// OpenContext is Open observing ctx for the whole cursor lifetime: a
// cancellation between Next calls aborts the next fetch. (StatementTimeout is
// not layered here — a cursor's pacing belongs to the application; pass a
// deadline ctx to bound it.) Like RunContext, it revalidates the plan's
// catalog version under the statement's locks, which are held until Close —
// so the plan stays valid for the cursor's whole lifetime.
func (s *Stmt) OpenContext(ctx context.Context, args ...any) (*Rows, error) {
	vals, err := hostValues(args)
	if err != nil {
		return nil, err
	}
	held, err := s.db.locks.AcquireContext(ctx, s.current().Locks)
	if err != nil {
		return nil, lockErr(err)
	}
	// The cursor reads under one snapshot, captured here and held — with
	// the vacuum horizon it pins — until Close: rows committed (or
	// vacuumed) while the cursor is open are invisible to it.
	reg := s.db.txns.Begin()
	gov := s.db.newGovernor(ctx)
	cp, err := s.planFor(gov, vals)
	if err != nil {
		s.db.txns.Finish(reg)
		held.Release()
		return nil, err
	}
	cur, err := exec.OpenQueryArgs(s.db.runtime(gov, reg.Snap), cp.Query, vals)
	if err != nil {
		s.db.txns.Finish(reg)
		held.Release()
		return nil, wrapGovErr(err, ExecStats{})
	}
	cols := cp.Query.OutNames
	if cols == nil {
		cols = []string{}
	}
	return &Rows{db: s.db, cols: cols, cursor: cur, held: held, reg: reg}, nil
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return r.cols }

// Next returns the next row as native Go values; ok reports whether a row
// was produced. The final Next (ok=false) releases the locks.
func (r *Rows) Next() (row []any, ok bool, err error) {
	raw, ok, err := r.cursor.Next()
	if err != nil || !ok {
		if cerr := r.Close(); cerr != nil && err == nil {
			err = cerr
		}
		return nil, false, wrapGovErr(err, ExecStats{})
	}
	return toNative(raw), true, nil
}

// Close releases the cursor and its locks; safe to call repeatedly. It
// returns the first error seen while closing the plan's scans, once. Closing
// — whether after draining or mid-stream — publishes the cursor's measured
// statistics (rows streamed so far, fetches, RSI calls) as LastStats exactly
// once: a second Close is a no-op returning nil, so it cannot clobber
// LastStats published by statements run in between.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	err := r.cursor.Close()
	if st := r.cursor.Stats(); st != nil {
		r.db.setLast(execStatsFrom(st))
	}
	r.db.txns.Finish(r.reg)
	r.held.Release()
	return err
}

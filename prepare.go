package systemr

// Compiled statements. System R compiled a statement once and ran the
// resulting plan many times: "application programs are compiled once and run
// many times. The cost of optimization is amortized over many runs"
// (Conclusion). Prepare performs parsing, semantic analysis, and access path
// selection once; each Run executes the stored plan.
//
// As in System R, a prepared plan embeds the catalog state of compile time:
// statistics refreshes or schema changes after Prepare do not re-plan (System
// R invalidated and recompiled stored plans on dependency changes; here the
// caller re-Prepares).

import (
	"context"
	"fmt"

	"systemr/internal/exec"
	"systemr/internal/governor"
	"systemr/internal/lock"
	"systemr/internal/plan"
	"systemr/internal/sem"
	"systemr/internal/sql"
	"systemr/internal/value"
)

// Stmt is a compiled SELECT statement.
type Stmt struct {
	db    *DB
	text  string
	query *plan.Query
	locks []lock.Request
}

// Prepare compiles a SELECT statement: the optimizer runs once, now.
func (db *DB) Prepare(text string) (*Stmt, error) {
	parsed, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel, ok := parsed.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("systemr: Prepare supports SELECT statements, got %T", parsed)
	}
	reqs := lockRequests(parsed)
	held := db.locks.Acquire(reqs)
	defer held.Release()
	blk, err := sem.Analyze(sel, db.cat)
	if err != nil {
		return nil, err
	}
	q, err := db.planBlock(blk)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, text: text, query: q, locks: reqs}, nil
}

// Run executes the compiled plan (no parsing, no optimization), binding one
// value per '?' host variable in statement order. Accepted argument types:
// int, int64, float64, string, nil.
func (s *Stmt) Run(args ...any) (*Result, error) {
	return s.RunContext(context.Background(), args...)
}

// RunContext is Run observing ctx: cancellation, deadlines, and the
// configured resource budgets abort execution as in ExecContext.
func (s *Stmt) RunContext(ctx context.Context, args ...any) (*Result, error) {
	vals, err := hostValues(args)
	if err != nil {
		return nil, err
	}
	if s.db.cfg.StatementTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.db.cfg.StatementTimeout)
		defer cancel()
	}
	held, err := s.db.locks.AcquireContext(ctx, s.locks)
	if err != nil {
		return nil, &StatementError{Err: governor.CtxErr(err)}
	}
	defer held.Release()
	rows, stats, err := exec.RunQueryArgs(s.db.runtime(s.db.newGovernor(ctx)), s.query, vals)
	es := execStatsFrom(stats)
	s.db.setLast(es)
	if err != nil {
		return nil, wrapGovErr(err, es)
	}
	out := make([][]any, len(rows))
	for i, r := range rows {
		out[i] = toNative(r)
	}
	cols := s.query.OutNames
	if cols == nil {
		cols = []string{}
	}
	return &Result{Columns: cols, Rows: out}, nil
}

// Explain returns the compiled plan.
func (s *Stmt) Explain() string { return s.query.Explain() }

// Text returns the original statement text.
func (s *Stmt) Text() string { return s.text }

// hostValues converts Go arguments to engine values.
func hostValues(args []any) ([]value.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]value.Value, len(args))
	for i, a := range args {
		switch x := a.(type) {
		case nil:
			out[i] = value.Null()
		case int:
			out[i] = value.NewInt(int64(x))
		case int64:
			out[i] = value.NewInt(x)
		case float64:
			out[i] = value.NewFloat(x)
		case string:
			out[i] = value.NewString(x)
		default:
			return nil, fmt.Errorf("systemr: unsupported host argument %d of type %T", i+1, a)
		}
	}
	return out, nil
}

// Rows is a streaming result cursor over a compiled statement — the
// tuple-at-a-time interface application programs used in System R. The
// statement's table locks are held until Close.
type Rows struct {
	db     *DB
	cols   []string
	cursor *exec.Cursor
	held   *lock.Held
}

// Open begins streaming execution of the compiled plan, binding one value
// per '?' host variable. The caller must Close the cursor (or drain it) to
// release the statement's locks.
func (s *Stmt) Open(args ...any) (*Rows, error) {
	return s.OpenContext(context.Background(), args...)
}

// OpenContext is Open observing ctx for the whole cursor lifetime: a
// cancellation between Next calls aborts the next fetch. (StatementTimeout is
// not layered here — a cursor's pacing belongs to the application; pass a
// deadline ctx to bound it.)
func (s *Stmt) OpenContext(ctx context.Context, args ...any) (*Rows, error) {
	vals, err := hostValues(args)
	if err != nil {
		return nil, err
	}
	held, err := s.db.locks.AcquireContext(ctx, s.locks)
	if err != nil {
		return nil, &StatementError{Err: governor.CtxErr(err)}
	}
	cur, err := exec.OpenQueryArgs(s.db.runtime(s.db.newGovernor(ctx)), s.query, vals)
	if err != nil {
		held.Release()
		return nil, wrapGovErr(err, ExecStats{})
	}
	cols := s.query.OutNames
	if cols == nil {
		cols = []string{}
	}
	return &Rows{db: s.db, cols: cols, cursor: cur, held: held}, nil
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return r.cols }

// Next returns the next row as native Go values; ok reports whether a row
// was produced. The final Next (ok=false) releases the locks.
func (r *Rows) Next() (row []any, ok bool, err error) {
	raw, ok, err := r.cursor.Next()
	if err != nil || !ok {
		if cerr := r.Close(); cerr != nil && err == nil {
			err = cerr
		}
		return nil, false, wrapGovErr(err, ExecStats{})
	}
	return toNative(raw), true, nil
}

// Close releases the cursor and its locks; safe to call repeatedly. It
// returns the first error seen while closing the plan's scans, once. Closing
// — whether after draining or mid-stream — publishes the cursor's measured
// statistics (rows streamed so far, fetches, RSI calls) as LastStats.
func (r *Rows) Close() error {
	err := r.cursor.Close()
	if st := r.cursor.Stats(); st != nil {
		r.db.setLast(execStatsFrom(st))
	}
	r.held.Release()
	return err
}

package systemr_test

import (
	"strings"
	"testing"

	"systemr"
	"systemr/internal/testutil"
	"systemr/internal/value"
)

// TestDumpAndRestore: a dumped script rebuilds an equivalent database.
func TestDumpAndRestore(t *testing.T) {
	src := newEmpDeptJobDB(t)
	src.MustExec("DELETE FROM EMP WHERE DNO = 5") // some churn before dumping
	var script strings.Builder
	if err := src.DumpSQL(&script); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"CREATE TABLE EMP", "CREATE UNIQUE INDEX DEPT_DNO", "UPDATE STATISTICS;"} {
		if !strings.Contains(script.String(), frag) {
			t.Fatalf("script lacks %q", frag)
		}
	}
	if strings.Contains(script.String(), "SYSTABLES (") {
		t.Fatal("system catalogs must not be dumped as CREATE TABLE")
	}

	dst := systemr.Open(systemr.Config{})
	n, err := dst.RunScript(strings.NewReader(script.String()))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if n < 300 {
		t.Fatalf("only %d statements restored", n)
	}

	// Equivalence over a query battery.
	for _, q := range []string{
		"SELECT COUNT(*) FROM EMP",
		"SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO ORDER BY DNO",
		"SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER'",
	} {
		a := mustRows(t, src, q)
		b := mustRows(t, dst, q)
		if !testutil.SameMultiset(a, b) {
			t.Fatalf("restored database differs for %q", q)
		}
	}
	// Statistics were refreshed by the trailing UPDATE STATISTICS.
	emp, _ := dst.Catalog().Table("EMP")
	if !emp.Stats.HasStats || emp.Stats.NCard != 290 {
		t.Fatalf("restored stats: %+v", emp.Stats)
	}
}

func mustRows(t *testing.T, db *systemr.DB, q string) []value.Row {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]value.Row, len(res.Rows))
	for i, r := range res.Rows {
		row := make(value.Row, len(r))
		for j, v := range r {
			switch x := v.(type) {
			case int64:
				row[j] = value.NewInt(x)
			case float64:
				row[j] = value.NewFloat(x)
			case string:
				row[j] = value.NewString(x)
			default:
				row[j] = value.Null()
			}
		}
		out[i] = row
	}
	return out
}

func TestRunScriptErrorPosition(t *testing.T) {
	db := systemr.Open(systemr.Config{})
	script := "CREATE TABLE T (A INTEGER); INSERT INTO T VALUES (1); BROKEN; INSERT INTO T VALUES (2)"
	n, err := db.RunScript(strings.NewReader(script))
	if err == nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !strings.Contains(err.Error(), "statement 3") {
		t.Fatalf("error lacks position: %v", err)
	}
	// Semicolons inside strings don't split.
	db2 := systemr.Open(systemr.Config{})
	script = "CREATE TABLE S (A VARCHAR); INSERT INTO S VALUES ('a;b')"
	if _, err := db2.RunScript(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	res, _ := db2.Query("SELECT A FROM S")
	if res.Rows[0][0].(string) != "a;b" {
		t.Fatalf("string with semicolon: %v", res.Rows)
	}
}

package main

// E12 — Section 6: correlated subquery evaluation. "A correlation subquery
// must in principle be re-evaluated for each candidate tuple ... However, if
// the referenced relation is ordered on the referenced column, the
// re-evaluation can be made conditional, depending on a test of whether or
// not the current referenced value is the same as the one in the previous
// candidate tuple." The paper adds that the optimizer "can use clues like
// NCARD > ICARD" — this engine costs the re-evaluations into access path
// selection, so it deliberately picks DNO-ordered delivery for the outer
// scan even when that scan is more expensive in isolation.

import (
	"fmt"

	"systemr/internal/workload"
)

func expNested() {
	query := "SELECT NAME FROM EMP X WHERE SAL > (SELECT AVG(SAL) FROM EMP WHERE DNO = X.DNO)"

	header("configuration", "outer rows", "subquery evaluations", "weighted cost")
	type cfg struct {
		name      string
		clustered bool
		naive     bool
	}
	for _, c := range []cfg{
		{"optimizer, EMP clustered on DNO", true, false},
		{"optimizer, EMP unclustered", false, false},
		{"no optimizer (segment scan)", false, true},
	} {
		db := workload.NewEmpDB(workload.EmpConfig{
			Emps: 2000, Depts: 50, Jobs: 10, Seed: 31,
			ClusterEmpByDno: c.clustered, Naive: c.naive,
		})
		_, stats, err := measure(db, query)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-32s | %10d | %20d | %13.1f\n",
			c.name, 2000, stats.SubqueryEvals, stats.Cost(0.033))
	}
	fmt.Println("\nNon-correlated subqueries evaluate exactly once regardless:")
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 2000, Depts: 50, Jobs: 10, Seed: 31})
	_, stats, err := measure(db, "SELECT NAME FROM EMP WHERE SAL > (SELECT AVG(SAL) FROM EMP)")
	if err != nil {
		panic(err)
	}
	fmt.Printf("  evaluations: %d (for %d candidate tuples)\n", stats.SubqueryEvals, 2000)
	fmt.Println("\n(The same-value cache re-evaluates once per distinct DNO when tuples")
	fmt.Println(" arrive in DNO order; the optimizer charges re-evaluations per path and")
	fmt.Println(" picks ordered delivery even on unclustered data — ~50 evaluations")
	fmt.Println(" instead of ~2000 for the naive plan.)")
}

package main

// E14 — the conclusion's amortization argument: "This number becomes even
// more insignificant when such a path selector is placed in an environment
// such as System R, where application programs are compiled once and run
// many times. The cost of optimization is amortized over many runs."

import (
	"fmt"
	"time"

	"systemr/internal/workload"
)

func expAmortize() {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 2000, Depts: 50, Jobs: 10, Seed: 43})
	query := "SELECT NAME FROM EMP WHERE DNO = 7 AND SAL > 20000 ORDER BY NAME"
	const runs = 200

	// Re-optimize every execution (terminal/ad-hoc style).
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := db.Query(query); err != nil {
			panic(err)
		}
	}
	adhoc := time.Since(start)

	// Compile once, run many (application-program style).
	stmt, err := db.Prepare(query)
	if err != nil {
		panic(err)
	}
	start = time.Now()
	for i := 0; i < runs; i++ {
		if _, err := stmt.Run(); err != nil {
			panic(err)
		}
	}
	compiled := time.Since(start)

	header("mode", "total for 200 runs", "per run")
	fmt.Printf("%-28s | %18v | %8v\n", "parse+optimize every run", adhoc, adhoc/runs)
	fmt.Printf("%-28s | %18v | %8v\n", "compiled once (Prepare)", compiled, compiled/runs)
	fmt.Printf("\nOptimization overhead amortized away: %.1f%% of ad-hoc time\n",
		100*float64(adhoc-compiled)/float64(adhoc))
	fmt.Println("(\"application programs are compiled once and run many times; the cost")
	fmt.Println(" of optimization is amortized over many runs\", Conclusion.)")
}

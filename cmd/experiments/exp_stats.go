package main

// E15 — why UPDATE STATISTICS matters (Section 4): without statistics the
// optimizer assumes "the relation is small" and uses arbitrary factors,
// which degrades cost predictions and plan choice on real data.
//
// E16 — the adjustable weighting factor W (Section 4): COST = PAGES + W·RSI.
// Sweeping W shifts plan choice between I/O-light and CPU-light plans.

import (
	"fmt"
	"strings"

	"systemr/internal/core"
	"systemr/internal/workload"
)

func expStatistics() {
	query := workload.Figure1Query
	header("catalog state", "meas pages", "meas RSI", "measured cost")
	var costs []float64
	var plans []string
	for _, c := range []struct {
		name    string
		nostats bool
	}{{"UPDATE STATISTICS run", false}, {"no statistics (defaults)", true}} {
		db := workload.NewEmpDB(workload.EmpConfig{
			Emps: 8000, Depts: 100, Jobs: 20, Seed: 53, NoStatistics: c.nostats,
		})
		q, stats, err := measure(db, query)
		if err != nil {
			panic(err)
		}
		cost := stats.Cost(core.DefaultW)
		costs = append(costs, cost)
		plans = append(plans, q.Explain())
		fmt.Printf("%-24s | %10d | %8d | %13.1f\n",
			c.name, stats.PageFetches+stats.PagesWritten, stats.RSICalls, cost)
	}
	fmt.Println("\nPlan with statistics:")
	fmt.Print(indentLines(plans[0], "  "))
	fmt.Println("Plan without statistics:")
	fmt.Print(indentLines(plans[1], "  "))
	if costs[0] < costs[1] {
		fmt.Printf("Statistics made the Figure 1 join %.1fx cheaper.\n", costs[1]/costs[0])
	} else {
		fmt.Println("(On this instance the default-statistics plan happened to coincide.)")
	}
	fmt.Println("Without statistics every relation looks ~100 tuples wide: the paper's")
	fmt.Println("arbitrary defaults apply and join order / access path choices degrade —")
	fmt.Println("the reason the UPDATE STATISTICS command exists (Section 4).")
}

func indentLines(s, prefix string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString(prefix + line + "\n")
	}
	return b.String()
}

func expWeight() {
	// ORDER BY on a non-clustered index column pulls I/O and CPU in opposite
	// directions: scanning the JOB index delivers the order with a page
	// fetch per tuple (I/O-heavy, no sort CPU); a segment scan plus sort is
	// page-light but pays the sort's tuple handling (CPU-heavy).
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 8000, Depts: 100, Jobs: 4, Seed: 59})
	query := "SELECT NAME FROM EMP ORDER BY JOB"

	header("W (CPU weight)", "chosen access path", "est pages", "est RSI", "weighted est")
	for _, w := range []float64{0.001, 0.01, core.DefaultW, 0.1, 0.5, 2} {
		cfg := db.OptimizerConfig()
		cfg.W = w
		q, _, err := planWith(db, cfg, query)
		if err != nil {
			panic(err)
		}
		est := q.Root.Est()
		label := findScan(q.Root).Label()
		if len(label) > 34 {
			label = label[:34]
		}
		fmt.Printf("%14.3f | %-34s | %9.1f | %8.1f | %12.1f\n",
			w, label, est.Cost.Pages, est.Cost.RSI, est.Cost.Total(w))
	}
	fmt.Println("\n(W is the paper's \"adjustable weighting factor between I/O and CPU\";")
	fmt.Println(" the chosen path flips from sort-into-temp to ordered index scan as CPU")
	fmt.Println(" time becomes more expensive relative to page fetches.)")
}

package main

// E1 (Table 1) and E2 (Table 2): the paper's two tables, reproduced with
// estimated-vs-measured columns.

import (
	"fmt"

	"systemr/internal/plan"
	"systemr/internal/workload"
)

// expTable1 checks every selectivity formula of Table 1 against the measured
// fraction of qualifying tuples on the EMP/DEPT/JOB database.
func expTable1() {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 5000, Depts: 50, Jobs: 10, Seed: 11})

	type row struct {
		kind string // Table 1 situation
		from string
		pred string
	}
	cases := []row{
		{"column = value (indexed column)", "EMP", "DNO = 25"},
		{"column = value (no index: default 1/10)", "EMP", "NAME = 'EMP00042'"},
		{"column1 = column2 (both indexed)", "EMP, DEPT", "EMP.DNO = DEPT.DNO"},
		{"column1 = column2 (one indexed)", "EMP, DEPT", "EMP.MANAGER = DEPT.DNO"},
		{"column > value (interpolated)", "EMP", "SAL > 40000"},
		{"column > value (no stats: default 1/3)", "EMP", "NAME > 'EMP02500'"},
		{"column BETWEEN v1 AND v2 (interpolated)", "EMP", "SAL BETWEEN 20000 AND 30000"},
		{"column BETWEEN (default 1/4)", "EMP", "NAME BETWEEN 'EMP00000' AND 'EMP01000'"},
		{"column IN (list)", "EMP", "DNO IN (1, 2, 3, 4, 5)"},
		{"column IN subquery", "EMP", "DNO IN (SELECT DNO FROM DEPT WHERE LOC = 'DENVER')"},
		{"(pred1) OR (pred2)", "EMP", "(DNO = 1 OR JOB = 2)"},
		{"NOT pred", "EMP", "NOT DNO = 1"},
	}

	header(fmt.Sprintf("%-42s", "Table 1 situation"), "estimated F", "measured F", "ratio")
	for _, c := range cases {
		query := "SELECT COUNT(*) FROM " + c.from + " WHERE " + c.pred
		_, o, err := planWith(db, db.OptimizerConfig(), "SELECT 1 = 1 FROM "+c.from+" WHERE "+c.pred)
		if err != nil {
			fmt.Printf("%-42s | error: %v\n", c.kind, err)
			continue
		}
		sels := o.FactorSelectivities()
		est := sels[0]
		matched := countRows(db, query)
		denom := countRows(db, "SELECT COUNT(*) FROM "+c.from)
		measured := float64(matched) / float64(denom)
		ratio := 0.0
		if measured > 0 {
			ratio = est / measured
		}
		fmt.Printf("%-42s | %11.4f | %10.4f | %5.2f\n", c.kind, est, measured, ratio)
	}
	fmt.Println("\n(ratio ≈ 1 means the estimate matched the data; defaults 1/10, 1/3,")
	fmt.Println(" 1/4 are the paper's arbitrary factors and deviate by design.)")
}

// expTable2 runs the seven access path situations of Table 2 and compares
// the optimizer's predicted pages/RSI against the measured execution.
func expTable2() {
	// Clustered database: EMP loaded in DNO order with a clustered DNO
	// index; JOB non-clustered index on EMP.
	db := workload.NewEmpDB(workload.EmpConfig{
		Emps: 8000, Depts: 100, Jobs: 25, Seed: 13, ClusterEmpByDno: true,
	})

	type situ struct {
		name  string
		query string
	}
	situations := []situ{
		{"unique index matching equal pred", "SELECT NAME FROM EMP WHERE EMPNO = 4321"},
		{"clustered index matching factor", "SELECT NAME FROM EMP WHERE DNO = 42"},
		{"non-clustered index matching factor", "SELECT NAME FROM EMP WHERE JOB = 7"},
		{"clustered index, no matching factor", "SELECT NAME FROM EMP ORDER BY DNO"},
		{"non-clustered index, no matching factor", "SELECT NAME FROM EMP ORDER BY JOB"},
		{"segment scan", "SELECT NAME FROM EMP WHERE MANAGER = -1"},
		{"range on clustered index", "SELECT NAME FROM EMP WHERE DNO BETWEEN 10 AND 19"},
	}

	header(fmt.Sprintf("%-40s", "Table 2 situation"),
		"pred pages", "meas pages", "pred RSI", "meas RSI", "access path")
	for _, s := range situations {
		q, stats, err := measure(db, s.query)
		if err != nil {
			fmt.Printf("%-40s | error: %v\n", s.name, err)
			continue
		}
		// Compare whole-plan prediction vs whole-statement measurement (for
		// ORDER BY cases the plan may include a sort's temporary-list I/O).
		est := q.Root.Est()
		label := findScan(q.Root).Label()
		if len(label) > 40 {
			label = label[:40]
		}
		fmt.Printf("%-40s | %10.1f | %10d | %8.1f | %8d | %s\n",
			s.name, est.Cost.Pages, stats.PageFetches+stats.PagesWritten, est.Cost.RSI, stats.RSICalls, label)
	}
	fmt.Println("\n(measured pages for ordered full scans include the paper's data-page")
	fmt.Println(" refetch behaviour for non-clustered indexes; the sort lines include")
	fmt.Println(" temporary-list I/O when the optimizer chose to sort instead.)")
}

// findScan locates the bottom-left access path node of a plan.
func findScan(n plan.Node) plan.Node {
	for {
		kids := n.Children()
		if len(kids) == 0 {
			return n
		}
		n = kids[0]
	}
}

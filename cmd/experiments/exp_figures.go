package main

// E3-E7: Figure 1 (the example join) and Figures 2-6 (the search tree).

import (
	"fmt"

	"systemr/internal/core"
	"systemr/internal/workload"
)

// expFigure1 runs the paper's example query end to end: the chosen plan,
// the measured cost, and a sample of the result.
func expFigure1() {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 2000, Depts: 40, Jobs: 8, Seed: 17})
	fmt.Println("Query (Figure 1):")
	fmt.Println(workload.Figure1Query)
	fmt.Println()

	q, stats, err := measure(db, workload.Figure1Query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("Chosen plan:")
	fmt.Print(q.Explain())
	fmt.Printf("\nMeasured: %d rows, %d page fetches, %d pages written, %d RSI calls, weighted cost %.1f\n",
		stats.Rows, stats.PageFetches, stats.PagesWritten, stats.RSICalls, stats.Cost(core.DefaultW))

	// Contrast with the naive (no optimizer) execution on an identical
	// database.
	naive := workload.NewEmpDB(workload.EmpConfig{Emps: 2000, Depts: 40, Jobs: 8, Seed: 17, Naive: true})
	_, nstats, err := measure(naive, workload.Figure1Query)
	if err != nil {
		fmt.Println("naive error:", err)
		return
	}
	fmt.Printf("Naive plan (segment scans, FROM-order nested loops, no SARGs):\n")
	fmt.Printf("Measured: %d rows, %d page fetches, %d RSI calls, weighted cost %.1f\n",
		nstats.Rows, nstats.PageFetches, nstats.RSICalls, nstats.Cost(core.DefaultW))
	if stats.Cost(core.DefaultW) > 0 {
		fmt.Printf("Optimizer speedup: %.1fx cheaper\n",
			nstats.Cost(core.DefaultW)/stats.Cost(core.DefaultW))
	}
}

// expFigures renders the optimizer's search tree for the example join — the
// textual analog of Figures 2 through 6.
func expFigures() {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 2000, Depts: 40, Jobs: 8, Seed: 17})
	tr := &core.Trace{}
	cfg := db.OptimizerConfig()
	cfg.Trace = tr
	q, _, err := planWith(db, cfg, workload.Figure1Query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(tr.Render())
	fmt.Println("\nFinal chosen plan:")
	fmt.Print(q.Explain())
}

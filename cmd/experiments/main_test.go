package main

import (
	"math"
	"testing"
)

func TestSpearman(t *testing.T) {
	perfect := []variantPlan{{est: 1, meas: 10}, {est: 2, meas: 20}, {est: 3, meas: 30}}
	if got := spearman(perfect); math.Abs(got-1) > 1e-9 {
		t.Fatalf("perfect agreement: %v", got)
	}
	inverted := []variantPlan{{est: 1, meas: 30}, {est: 2, meas: 20}, {est: 3, meas: 10}}
	if got := spearman(inverted); math.Abs(got+1) > 1e-9 {
		t.Fatalf("perfect inversion: %v", got)
	}
	if got := spearman([]variantPlan{{est: 1, meas: 1}}); got != 1 {
		t.Fatalf("degenerate: %v", got)
	}
}

func TestChainQueryShape(t *testing.T) {
	q := chainQuery(3)
	if q != "SELECT T1.V FROM T1, T2, T3 WHERE T1.K = T2.K AND T2.K = T3.K" {
		t.Fatalf("chain query: %s", q)
	}
	if chainQuery(1) != "SELECT T1.V FROM T1" {
		t.Fatalf("single: %s", chainQuery(1))
	}
}

func TestIndentLines(t *testing.T) {
	if got := indentLines("a\nb\n", "> "); got != "> a\n> b\n" {
		t.Fatalf("indent: %q", got)
	}
}

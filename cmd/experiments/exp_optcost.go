package main

// E9 — the conclusion's claims about the cost of optimization itself:
// "for a two-way join, the cost of optimization is approximately equivalent
// to between 5 and 20 database retrievals"; "joins of 8 tables have been
// optimized in a few seconds"; "the number of solutions ... is at most
// 2^n (the number of subsets of n tables) times the number of interesting
// result orders", "frequently reduced substantially by the join order
// heuristic".

import (
	"fmt"
	"strings"
	"time"

	"systemr"
	"systemr/internal/core"
	"systemr/internal/workload"
)

// chainDB builds T1..Tn, each with K (indexed, shared domain) and V, plus a
// chain of join predicates T1.K=T2.K, ..., T(n-1).K=Tn.K in the queries.
func chainDB(n, rows int) *systemr.DB {
	db := systemr.Open(systemr.Config{})
	for t := 1; t <= n; t++ {
		db.MustExec(fmt.Sprintf("CREATE TABLE T%d (K INTEGER, V INTEGER)", t))
		for i := 0; i < rows; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO T%d VALUES (%d, %d)", t, i%25, i))
		}
		db.MustExec(fmt.Sprintf("CREATE INDEX T%d_K ON T%d (K)", t, t))
	}
	db.MustExec("UPDATE STATISTICS")
	return db
}

func chainQuery(n int) string {
	var from, preds []string
	for t := 1; t <= n; t++ {
		from = append(from, fmt.Sprintf("T%d", t))
		if t > 1 {
			preds = append(preds, fmt.Sprintf("T%d.K = T%d.K", t-1, t))
		}
	}
	q := "SELECT T1.V FROM " + strings.Join(from, ", ")
	if len(preds) > 0 {
		q += " WHERE " + strings.Join(preds, " AND ")
	}
	return q
}

func expOptCost() {
	const maxN = 8
	db := chainDB(maxN, 200)

	// Calibrate "one database retrieval": the wall time per RSI call of a
	// plain segment scan.
	perRetrieval := calibrateRetrieval(db)
	fmt.Printf("Calibration: one tuple retrieval ≈ %v\n\n", perRetrieval)

	header("n rels", "opt time (heuristic)", "≈retrievals", "candidates", "solutions", "opt time (exhaustive)", "candidates ")
	for n := 2; n <= maxN; n++ {
		query := chainQuery(n)
		tOn, statsOn := timeOptimize(db, db.OptimizerConfig(), query)
		cfgOff := db.OptimizerConfig()
		cfgOff.DisableJoinHeuristic = true
		tOff, statsOff := timeOptimize(db, cfgOff, query)
		retr := float64(tOn) / float64(perRetrieval)
		fmt.Printf("%6d | %20v | %11.0f | %10d | %9d | %21v | %11d\n",
			n, tOn, retr, statsOn.CandidatesConsidered, statsOn.SolutionsStored,
			tOff, statsOff.CandidatesConsidered)
	}
	fmt.Println("\n(Paper: 2-way join optimization ≈ 5-20 retrievals; 8-table joins in")
	fmt.Println(" seconds on 1979 hardware — microseconds-to-milliseconds here; the")
	fmt.Println(" heuristic columns show the search reduction it buys.)")
}

// timeOptimize plans the query repeatedly and returns the per-plan time and
// the search statistics.
func timeOptimize(db *systemr.DB, cfg core.Config, query string) (time.Duration, core.SearchStats) {
	const reps = 20
	var stats core.SearchStats
	start := time.Now()
	for i := 0; i < reps; i++ {
		_, o, err := planWith(db, cfg, query)
		if err != nil {
			panic(err)
		}
		stats = o.Stats()
	}
	return time.Since(start) / reps, stats
}

// calibrateRetrieval measures the wall time per tuple crossing the RSI in a
// simple segment scan.
func calibrateRetrieval(db *systemr.DB) time.Duration {
	db.Pool().Flush()
	start := time.Now()
	const reps = 20
	for i := 0; i < reps; i++ {
		if _, err := db.Query("SELECT COUNT(*) FROM T1"); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start) / reps
	rows := db.LastStats().RSICalls
	if rows == 0 {
		return time.Microsecond
	}
	per := elapsed / time.Duration(rows)
	if per <= 0 {
		per = time.Nanosecond * 100
	}
	return per
}

var _ = workload.Figure1Query

package main

// E8 — the conclusion's central claim: "although the costs predicted by the
// optimizer are often not accurate in absolute value, the true optimal path
// is selected in a large majority of cases. In many cases, the ordering
// among the estimated costs for all paths considered is precisely the same
// as that among the actual measured costs."
//
// Method: for each query of a battery, build one plan per optimizer
// configuration (the default plus every ablation and the naive baseline),
// execute each plan cold, and compare (a) whether the default plan's
// measured cost is the minimum, and (b) the rank agreement between estimated
// and measured costs.

import (
	"fmt"
	"sort"

	"systemr"
	"systemr/internal/core"
	"systemr/internal/plan"
	"systemr/internal/workload"
)

type variantPlan struct {
	name string
	est  float64
	meas float64
}

func qualityVariants(db *systemr.DB) map[string]core.Config {
	base := db.OptimizerConfig()
	mk := func(f func(*core.Config)) core.Config {
		c := base
		f(&c)
		return c
	}
	return map[string]core.Config{
		"chosen":    base,
		"nlonly":    mk(func(c *core.Config) { c.NestedLoopsOnly = true }),
		"mergeonly": mk(func(c *core.Config) { c.MergeOnly = true }),
		"nosargs":   mk(func(c *core.Config) { c.DisableSargs = true }),
		"noorders":  mk(func(c *core.Config) { c.DisableInterestingOrders = true }),
	}
}

// qualityQueries is the evaluation battery: the shapes the paper's sections
// discuss, at sizes where plan choice matters.
var qualityQueries = []string{
	"SELECT NAME FROM EMP WHERE EMPNO = 123",
	"SELECT NAME FROM EMP WHERE DNO = 7",
	"SELECT NAME FROM EMP WHERE SAL > 45000",
	"SELECT NAME FROM EMP WHERE SAL > 45000 AND JOB = 3",
	"SELECT NAME FROM EMP WHERE DNO BETWEEN 3 AND 5 ORDER BY DNO",
	"SELECT NAME FROM EMP ORDER BY DNO",
	"SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER'",
	"SELECT NAME, TITLE FROM EMP, JOB WHERE EMP.JOB = JOB.JOB AND TITLE = 'CLERK'",
	workload.Figure1Query,
	"SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO",
	"SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO FROM DEPT WHERE LOC = 'DENVER') AND SAL > 30000",
	"SELECT E.NAME FROM EMP E, EMP M WHERE E.MANAGER = M.EMPNO AND M.JOB = 1",
}

func expQuality() {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 3000, Depts: 60, Jobs: 12, Seed: 19})
	w := core.DefaultW

	optimalPicked := 0
	total := 0
	var rankAgreements []float64

	header(fmt.Sprintf("%-34s", "query (truncated)"), "chosen meas", "best meas", "best variant", "opt?", "rank-corr")
	for _, query := range qualityQueries {
		var variants []variantPlan
		for name, cfg := range qualityVariants(db) {
			q, _, err := planWith(db, cfg, query)
			if err != nil {
				continue
			}
			stats, err := measurePlanned(db, q)
			if err != nil {
				continue
			}
			variants = append(variants, variantPlan{
				name: name,
				est:  planCost(q, w),
				meas: stats.Cost(w),
			})
		}
		sort.Slice(variants, func(i, j int) bool { return variants[i].name < variants[j].name })
		var chosen, best *variantPlan
		for i := range variants {
			v := &variants[i]
			if v.name == "chosen" {
				chosen = v
			}
			if best == nil || v.meas < best.meas {
				best = v
			}
		}
		if chosen == nil || best == nil {
			continue
		}
		total++
		// "Optimal" within 5% — ties between equivalent plans count.
		isOpt := chosen.meas <= best.meas*1.05
		if isOpt {
			optimalPicked++
		}
		corr := spearman(variants)
		rankAgreements = append(rankAgreements, corr)

		qshort := query
		if len(qshort) > 34 {
			qshort = qshort[:31] + "..."
		}
		mark := "no"
		if isOpt {
			mark = "YES"
		}
		fmt.Printf("%-34s | %11.1f | %9.1f | %-12s | %-4s | %9.2f\n",
			qshort, chosen.meas, best.meas, best.name, mark, corr)
	}
	avg := 0.0
	for _, c := range rankAgreements {
		avg += c
	}
	if len(rankAgreements) > 0 {
		avg /= float64(len(rankAgreements))
	}
	fmt.Printf("\nOptimizer picked the measured-cheapest plan (within 5%%) on %d/%d queries (%.0f%%).\n",
		optimalPicked, total, 100*float64(optimalPicked)/float64(total))
	fmt.Printf("Mean Spearman rank correlation between estimated and measured costs: %.2f\n", avg)
	fmt.Println("(Paper: \"the true optimal path is selected in a large majority of cases\";")
	fmt.Println(" \"the ordering among the estimated costs ... is precisely the same as that")
	fmt.Println(" among the actual measured costs\" in many cases.)")
}

// planCost is the optimizer's estimated weighted cost for the whole plan.
func planCost(q *plan.Query, w float64) float64 {
	return q.Root.Est().Cost.Total(w)
}

// spearman computes the rank correlation between estimated and measured
// costs across plan variants.
func spearman(vs []variantPlan) float64 {
	n := len(vs)
	if n < 2 {
		return 1
	}
	rank := func(key func(variantPlan) float64) []float64 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return key(vs[idx[a]]) < key(vs[idx[b]]) })
		r := make([]float64, n)
		for pos, i := range idx {
			r[i] = float64(pos)
		}
		return r
	}
	re := rank(func(v variantPlan) float64 { return v.est })
	rm := rank(func(v variantPlan) float64 { return v.meas })
	var d2 float64
	for i := 0; i < n; i++ {
		d := re[i] - rm[i]
		d2 += d * d
	}
	return 1 - 6*d2/float64(n*(n*n-1))
}

package main

// E10 (join-method crossover), E11 (clustering), E13 (search arguments).

import (
	"fmt"

	"systemr"
	"systemr/internal/core"
	"systemr/internal/workload"
)

// expJoinMethods sweeps the inner relation's cardinality and measures nested
// loops vs merging scans — the Blasgen-Eswaran motivation for supporting
// both methods (Section 5): index-assisted nested loops win when the outer
// is small and selective; merging wins for large unselective joins.
func expJoinMethods() {
	header("outer rows", "inner rows", "NL cost", "merge cost", "winner", "optimizer chose")
	for _, size := range []struct{ outer, inner int }{
		{20, 500}, {100, 2000}, {500, 2000}, {2000, 2000}, {2000, 8000},
	} {
		db := systemr.Open(systemr.Config{BufferPages: 32})
		db.MustExec("CREATE TABLE A (K INTEGER, V INTEGER)")
		db.MustExec("CREATE TABLE B (K INTEGER, W INTEGER)")
		for i := 0; i < size.outer; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO A VALUES (%d, %d)", i%50, i))
		}
		for i := 0; i < size.inner; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO B VALUES (%d, %d)", i%50, i))
		}
		db.MustExec("CREATE INDEX A_K ON A (K)")
		db.MustExec("CREATE INDEX B_K ON B (K)")
		db.MustExec("UPDATE STATISTICS")

		query := "SELECT A.V FROM A, B WHERE A.K = B.K"
		w := core.DefaultW

		nlCfg := db.OptimizerConfig()
		nlCfg.NestedLoopsOnly = true
		qNL, _, err := planWith(db, nlCfg, query)
		if err != nil {
			panic(err)
		}
		nlStats, _ := measurePlanned(db, qNL)

		mgCfg := db.OptimizerConfig()
		mgCfg.MergeOnly = true
		qMG, _, err := planWith(db, mgCfg, query)
		if err != nil {
			panic(err)
		}
		mgStats, _ := measurePlanned(db, qMG)

		qDef, _, err := planWith(db, db.OptimizerConfig(), query)
		if err != nil {
			panic(err)
		}
		chose := "nested loops"
		if hasMerge(qDef) {
			chose = "merge scan"
		}
		winner := "nested loops"
		if mgStats.Cost(w) < nlStats.Cost(w) {
			winner = "merge scan"
		}
		fmt.Printf("%10d | %10d | %7.1f | %10.1f | %-12s | %s\n",
			size.outer, size.inner, nlStats.Cost(w), mgStats.Cost(w), winner, chose)
	}
	fmt.Println("\n(Measured weighted costs, cold buffer. The crossover from nested loops")
	fmt.Println(" to merging scans appears as the join grows, as in Blasgen-Eswaran.)")
}

func hasMerge(q interface{ Explain() string }) bool {
	return containsStr(q.Explain(), "MERGEJOIN")
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// expClustering measures the same DNO range scan on a clustered and a
// non-clustered EMP_DNO index: "a clustered index has the property that ...
// each data page containing a tuple from that relation will be touched only
// once" (Section 3).
func expClustering() {
	header("layout", "pred pages", "meas pages", "meas RSI", "rows")
	for _, clustered := range []bool{true, false} {
		db := workload.NewEmpDB(workload.EmpConfig{
			Emps: 8000, Depts: 100, Jobs: 20, Seed: 23, ClusterEmpByDno: clustered,
		})
		q, stats, err := measure(db, "SELECT NAME FROM EMP WHERE DNO BETWEEN 40 AND 49")
		if err != nil {
			panic(err)
		}
		name := "non-clustered EMP_DNO"
		if clustered {
			name = "clustered EMP_DNO"
		}
		fmt.Printf("%-21s | %10.1f | %10d | %8d | %4d\n",
			name, findScan(q.Root).Est().Cost.Pages, stats.PageFetches, stats.RSICalls, stats.Rows)
	}
	fmt.Println("\n(Same query, same data; only physical clustering differs. The paper's")
	fmt.Println(" F(preds)×(NINDX+TCARD) vs F(preds)×(NINDX+NCARD) formulas predict the gap.)")
}

// expSargs measures the RSI-call savings of search arguments: predicates
// evaluated inside the RSS reject tuples without the cost of an RSI call.
func expSargs() {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 8000, Depts: 100, Jobs: 20, Seed: 29})
	query := "SELECT NAME FROM EMP WHERE MANAGER = 17" // unindexed → segment scan

	header("configuration", "meas pages", "meas RSI", "weighted cost")
	for _, c := range []struct {
		name    string
		disable bool
	}{{"predicates as SARGs (RSS filters)", false}, {"predicates above the RSI", true}} {
		cfg := db.OptimizerConfig()
		cfg.DisableSargs = c.disable
		q, _, err := planWith(db, cfg, query)
		if err != nil {
			panic(err)
		}
		stats, err := measurePlanned(db, q)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-33s | %10d | %8d | %13.1f\n",
			c.name, stats.PageFetches, stats.RSICalls, stats.Cost(core.DefaultW))
	}
	fmt.Println("\n(\"This reduces cost by eliminating the overhead of making RSI calls")
	fmt.Println(" for tuples which can be efficiently rejected in the RSS\", Section 3.)")
}

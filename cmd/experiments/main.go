// Command experiments regenerates every table and figure of the paper's
// evaluation, plus the quantitative claims of its conclusion. Each experiment
// prints a table of paper-predicted vs. measured quantities; EXPERIMENTS.md
// records a reference run.
//
// Usage:
//
//	go run ./cmd/experiments            # run everything
//	go run ./cmd/experiments -run table2
//	go run ./cmd/experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"systemr"
	"systemr/internal/core"
	"systemr/internal/plan"
	"systemr/internal/sem"
	"systemr/internal/sql"
)

type experiment struct {
	name string
	desc string
	fn   func()
}

var experiments = []experiment{
	{"table1", "Table 1: selectivity factors, estimated vs measured", expTable1},
	{"table2", "Table 2: single-relation access path costs, predicted vs measured", expTable2},
	{"figure1", "Figure 1: the EMP/DEPT/JOB join example, end to end", expFigure1},
	{"figures", "Figures 2-6: the optimizer search tree for the example join", expFigures},
	{"quality", "Conclusion: does the optimizer pick the true cheapest plan?", expQuality},
	{"optcost", "Conclusion: cost of optimization vs number of joined relations", expOptCost},
	{"joinmethods", "Section 5: nested loops vs merging scans crossover", expJoinMethods},
	{"clustering", "Section 3: clustered vs non-clustered index scans", expClustering},
	{"nested", "Section 6: correlated subquery re-evaluation and caching", expNested},
	{"sargs", "Section 3: RSI calls saved by search arguments", expSargs},
	{"amortize", "Conclusion: compile once, run many — optimization amortized", expAmortize},
	{"statistics", "Section 4: plan choice with and without UPDATE STATISTICS", expStatistics},
	{"weight", "Section 4: the adjustable I/O-vs-CPU weighting factor W", expWeight},
}

func main() {
	run := flag.String("run", "all", "experiment to run (or 'all')")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-12s %s\n", e.name, e.desc)
		}
		return
	}
	found := false
	for _, e := range experiments {
		if *run == "all" || *run == e.name {
			found = true
			fmt.Printf("==================================================================\n")
			fmt.Printf("EXPERIMENT %s — %s\n", e.name, e.desc)
			fmt.Printf("==================================================================\n")
			e.fn()
			fmt.Println()
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
		os.Exit(1)
	}
}

// measure runs a query on a cold buffer pool and returns the plan plus the
// measured execution statistics.
func measure(db *systemr.DB, query string) (*plan.Query, systemr.ExecStats, error) {
	q, err := db.PlanSelect(query)
	if err != nil {
		return nil, systemr.ExecStats{}, err
	}
	db.Pool().Flush()
	db.Pool().Stats().Reset()
	if _, err := db.Query(query); err != nil {
		return nil, systemr.ExecStats{}, err
	}
	return q, db.LastStats(), nil
}

// measurePlanned executes an already-built plan cold and returns measured
// stats (for plans produced by non-default optimizer configurations).
func measurePlanned(db *systemr.DB, q *plan.Query) (systemr.ExecStats, error) {
	db.Pool().Flush()
	db.Pool().Stats().Reset()
	before := db.Pool().Stats().Snapshot()
	_, st, err := db.RunPlanned(q)
	if err != nil {
		return systemr.ExecStats{}, err
	}
	_ = before
	return systemr.ExecStats{
		PageFetches:   st.IO.PageFetches,
		PagesWritten:  st.IO.PagesWritten,
		LogicalReads:  st.IO.LogicalReads,
		RSICalls:      st.IO.RSICalls,
		SubqueryEvals: st.SubqueryEvals,
		Rows:          st.Rows,
	}, nil
}

// planWith analyzes and optimizes a query under an explicit optimizer
// configuration.
func planWith(db *systemr.DB, cfg core.Config, query string) (*plan.Query, *core.Optimizer, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, nil, fmt.Errorf("not a SELECT: %s", query)
	}
	blk, err := sem.Analyze(sel, db.Catalog())
	if err != nil {
		return nil, nil, err
	}
	o := core.New(db.Catalog(), cfg)
	q, err := o.Optimize(blk)
	return q, o, err
}

// countRows evaluates SELECT COUNT(*) and returns the count.
func countRows(db *systemr.DB, query string) int64 {
	res, err := db.Query(query)
	if err != nil {
		panic(err)
	}
	return res.Rows[0][0].(int64)
}

func header(cols ...string) {
	fmt.Println(strings.Join(cols, " | "))
	sep := make([]string, len(cols))
	for i, c := range cols {
		sep[i] = strings.Repeat("-", len(c))
	}
	fmt.Println(strings.Join(sep, "-+-"))
}

package main

import (
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"systemr"
	"systemr/internal/workload"
)

// script runs the shell over a scripted session and returns its output.
func script(t *testing.T, lines ...string) string {
	t.Helper()
	var out strings.Builder
	run(strings.NewReader(strings.Join(lines, "\n")+"\n"), &out, nil, false)
	return out.String()
}

func TestShellSession(t *testing.T) {
	out := script(t,
		"CREATE TABLE T (A INTEGER, B VARCHAR);",
		"INSERT INTO T VALUES (1, 'one'), (2, 'two');",
		"UPDATE STATISTICS;",
		"SELECT A, B FROM T",
		"  ORDER BY A DESC;",
		"\\stats",
		"\\d",
		"EXPLAIN SELECT A FROM T WHERE A = 1;",
		"EXPLAIN ANALYZE SELECT A FROM T WHERE A = 1;",
		"BROKEN SQL;",
		"\\nonsense",
		"\\q",
	)
	for _, frag := range []string{
		"sql> ",
		"...> ",                    // continuation prompt for the split SELECT
		"(2 rows)",                 // query output
		"two",                      // descending order puts 2 first
		"rows: 2",                  // \stats
		"T (A INTEGER, B VARCHAR)", // \d
		"QUERY BLOCK (main)",       // EXPLAIN
		"| act rows=",              // EXPLAIN ANALYZE actuals
		"error:",                   // broken statement
		"unknown command:",         // bad shell command
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("session output lacks %q:\n%s", frag, out)
		}
	}
	// Descending order actually honored in the printed table.
	if strings.Index(out, "two") > strings.Index(out, "one") {
		t.Fatalf("DESC order not reflected:\n%s", out)
	}
}

// TestShellTiming toggles \timing and checks a stats line follows the next
// statement (and stops following once toggled back off).
func TestShellTiming(t *testing.T) {
	out := script(t,
		"CREATE TABLE T (A INTEGER);",
		"INSERT INTO T VALUES (1), (2), (3);",
		"\\timing",
		"SELECT A FROM T;",
		"\\timing",
		"\\q",
	)
	if !strings.Contains(out, "timing on") || !strings.Contains(out, "timing off") {
		t.Fatalf("timing toggle output:\n%s", out)
	}
	idx := strings.Index(out, "timing on")
	if idx < 0 || !strings.Contains(out[idx:], "RSI calls:") {
		t.Fatalf("no stats line after timing on:\n%s", out)
	}
	if !strings.Contains(out[idx:], "rows: 3") {
		t.Fatalf("timing stats lack row count:\n%s", out)
	}
}

// TestShellCache runs a SELECT twice and checks \cache reports the repeat as
// a hit, plus a catalog version that moved past 1 with the DDL. Statistics
// are refreshed first so the cached plan's estimate is accurate — on a
// never-analyzed table the default NCARD of 100 misses the 1-row actual by
// 100× and the estimation feedback loop would recompile the repeat instead
// of serving it.
func TestShellCache(t *testing.T) {
	out := script(t,
		"CREATE TABLE T (A INTEGER);",
		"INSERT INTO T VALUES (1);",
		"UPDATE STATISTICS;",
		"SELECT A FROM T;",
		"SELECT A FROM T;",
		"\\cache",
		"\\q",
	)
	if !strings.Contains(out, "hits: 1") || !strings.Contains(out, "misses: 1") {
		t.Fatalf("\\cache counters:\n%s", out)
	}
	if !strings.Contains(out, "catalog version: 3") { // CREATE TABLE bumped 1 -> 2, UPDATE STATISTICS 2 -> 3
		t.Fatalf("\\cache catalog version:\n%s", out)
	}
}

// TestShellMetrics checks \metrics emits the Prometheus exposition with the
// statement counters and buffer-pool gauges populated by the session so far.
func TestShellMetrics(t *testing.T) {
	out := script(t,
		"CREATE TABLE T (A INTEGER);",
		"INSERT INTO T VALUES (1), (2);",
		"SELECT A FROM T;",
		"\\metrics",
		"\\q",
	)
	for _, frag := range []string{
		"# TYPE systemr_statements_total counter",
		"systemr_statements_total 3",
		"# TYPE systemr_statement_seconds histogram",
		"systemr_statement_seconds_count 3",
		"# TYPE systemr_buffer_hit_ratio gauge",
		"systemr_plan_cache_misses 1",
		"systemr_cost_w 0.033",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("\\metrics output lacks %q:\n%s", frag, out)
		}
	}
}

func TestShellLoadEmp(t *testing.T) {
	out := script(t,
		"\\load emp",
		"SELECT COUNT(*) FROM EMP;",
		"\\q",
	)
	if !strings.Contains(out, "loaded EMP (2000)") || !strings.Contains(out, "2000") {
		t.Fatalf("load emp session:\n%s", out)
	}
}

func TestShellDump(t *testing.T) {
	out := script(t,
		"CREATE TABLE T (A INTEGER);",
		"INSERT INTO T VALUES (7);",
		"\\dump",
		"\\q",
	)
	if !strings.Contains(out, "CREATE TABLE T (A INTEGER);") ||
		!strings.Contains(out, "INSERT INTO T VALUES (7);") {
		t.Fatalf("dump output:\n%s", out)
	}
}

// TestInterruptCancelsStatement delivers a "Ctrl-C" mid-statement and checks
// that only the in-flight statement dies — the shell's database stays usable.
func TestInterruptCancelsStatement(t *testing.T) {
	conn := workload.NewEmpDB(workload.EmpConfig{Emps: 2000, Depts: 50, Jobs: 10}).Conn()
	sigc := make(chan os.Signal, 1)
	go func() {
		time.Sleep(5 * time.Millisecond)
		sigc <- os.Interrupt
	}()
	// Unindexed self-join: ~4M tuple visits, far longer than the signal delay.
	_, err := execInterruptible(conn,
		"SELECT COUNT(*) FROM EMP E1, EMP E2 WHERE E1.SAL < E2.SAL", sigc)
	if !errors.Is(err, systemr.ErrCanceled) {
		t.Fatalf("interrupted statement: got %v, want ErrCanceled", err)
	}
	// A stale signal queued between statements must not cancel the next one.
	sigc <- os.Interrupt
	res, err := execInterruptible(conn, "SELECT COUNT(*) FROM EMP", sigc)
	if err != nil {
		t.Fatalf("follow-up statement after interrupt: %v", err)
	}
	if res.Rows[0][0].(int64) != 2000 {
		t.Fatalf("follow-up count = %v, want 2000", res.Rows[0][0])
	}
}

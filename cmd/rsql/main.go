// Command rsql is an interactive SQL shell over the systemr engine — the
// "on-line casual-user-oriented terminal interface" of the paper's
// introduction. Statements end with ';'. The shell is one session: BEGIN
// opens a transaction (the prompt becomes "txn>"), COMMIT and ROLLBACK end
// it; statements outside a transaction autocommit. Shell commands:
//
//	\d          list tables, indexes, and statistics
//	\stats      measured cost of the last statement
//	\cache      plan cache counters and the current catalog version
//	\metrics    engine metrics registry in Prometheus text format
//	\timing     toggle automatic cost reporting after each statement
//	\load emp   load the EMP/DEPT/JOB example database
//	\dump       print a SQL script recreating the database
//	\q          quit
//
// The --timing flag starts the shell with timing on.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"systemr"
	"systemr/internal/workload"
)

func main() {
	timing := flag.Bool("timing", false, "print measured cost (ExecStats) after each statement")
	flag.Parse()
	// Ctrl-C cancels the in-flight statement instead of killing the shell:
	// the governor observes the canceled context within a bounded number of
	// RSI calls and the statement returns ErrCanceled with its locks and
	// scans released.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	run(os.Stdin, os.Stdout, sigc, *timing)
}

// run drives the shell loop; factored out of main for testing. Signals
// arriving on sigc (nil for tests) cancel the statement being executed.
// timing starts the session with per-statement cost reporting on.
func run(input io.Reader, out io.Writer, sigc <-chan os.Signal, timing bool) {
	db := systemr.Open(systemr.Config{})
	conn := db.Conn()
	in := bufio.NewScanner(input)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(out, "systemr — System R access path selection, reproduced.")
	fmt.Fprintln(out, "Statements end with ';'.  \\d tables  \\stats cost  \\cache plans  \\metrics registry  \\load emp  \\dump script  \\q quit")

	var buf strings.Builder
	prompt := func() {
		switch {
		case buf.Len() > 0:
			fmt.Fprint(out, "...> ")
		case conn.TxnAborted():
			// The open transaction was rolled back by the engine (deadlock
			// victim or lock timeout); only ROLLBACK gets out.
			fmt.Fprint(out, "txn!> ")
		case conn.InTxn():
			fmt.Fprint(out, "txn> ")
		default:
			fmt.Fprint(out, "sql> ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			switch {
			case trimmed == "\\q":
				return
			case trimmed == "\\d":
				fmt.Fprint(out, db.Tables())
			case trimmed == "\\stats":
				printStats(out, db.LastStats())
			case trimmed == "\\cache":
				printCache(out, db.PlanCacheStats())
			case trimmed == "\\metrics":
				if _, err := db.Metrics().WriteTo(out); err != nil {
					fmt.Fprintln(out, "error:", err)
				}
			case trimmed == "\\timing":
				timing = !timing
				state := "off"
				if timing {
					state = "on"
				}
				fmt.Fprintln(out, "timing", state)
			case trimmed == "\\load emp":
				_ = conn.Close() // roll back any open transaction on the old DB
				db = workload.NewEmpDB(workload.EmpConfig{Emps: 2000, Depts: 50, Jobs: 10})
				conn = db.Conn()
				fmt.Fprintln(out, "loaded EMP (2000), DEPT (50), JOB (10) with indexes and statistics")
			case trimmed == "\\dump":
				if err := db.DumpSQL(out); err != nil {
					fmt.Fprintln(out, "error:", err)
				}
			default:
				fmt.Fprintln(out, "unknown command:", trimmed)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		stmt := buf.String()
		buf.Reset()
		start := time.Now()
		res, err := execInterruptible(conn, stmt, sigc)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
		} else {
			fmt.Fprint(out, systemr.FormatResult(res))
			if timing {
				printStats(out, db.LastStats())
			}
			fmt.Fprintf(out, "time: %v\n", elapsed)
		}
		prompt()
	}
}

// printStats renders measured statement cost in the paper's units (also the
// \stats command's output).
func printStats(out io.Writer, s systemr.ExecStats) {
	fmt.Fprintf(out, "page fetches: %d  pages written: %d  RSI calls: %d  rows: %d  cost: %.2f\n",
		s.PageFetches, s.PagesWritten, s.RSICalls, s.Rows, s.Cost(0.033))
}

// printCache renders the plan cache counters (the \cache command's output).
func printCache(out io.Writer, s systemr.PlanCacheStats) {
	fmt.Fprintf(out, "plan cache: %d/%d entries  hits: %d  misses: %d  invalidations: %d  evictions: %d\n",
		s.Entries, s.Capacity, s.Hits, s.Misses, s.Invalidations, s.Evictions)
	fmt.Fprintf(out, "compilations: %d  catalog version: %d\n", s.Compilations, s.CatalogVersion)
}

// execInterruptible runs one statement on the session under a context
// canceled by the first signal to arrive during execution. Signals delivered
// between statements (e.g. a Ctrl-C that landed just after a statement
// finished) are drained first so they cannot cancel the next statement
// spuriously.
func execInterruptible(conn *systemr.Conn, stmt string, sigc <-chan os.Signal) (*systemr.Result, error) {
	if sigc == nil {
		return conn.Exec(stmt)
	}
drain:
	for {
		select {
		case <-sigc:
		default:
			break drain
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-sigc:
			cancel()
		case <-ctx.Done():
		}
	}()
	res, err := conn.ExecContext(ctx, stmt)
	cancel()
	<-watchDone
	return res, err
}

package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"testing"

	"systemr/internal/analysis"
)

func TestWriteSARIF(t *testing.T) {
	root := filepath.FromSlash("/mod")
	diags := []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: filepath.FromSlash("/mod/internal/exec/run.go"), Line: 42, Column: 7},
			Analyzer: "snappin",
			Message:  "reaches Page.ReadVersioned without a pinned snapshot",
		},
		{
			Pos:      token.Position{Filename: filepath.FromSlash("/elsewhere/x.go"), Line: 1},
			Analyzer: "sysrcheck",
			Message:  "unused ignore directive",
		},
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, root, analysis.Suite, diags); err != nil {
		t.Fatal(err)
	}

	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "sysrcheck" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// One rule per analyzer plus the driver's own directive-misuse rule.
	if want := len(analysis.Suite) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "snappin" || r.Level != "error" {
		t.Errorf("result 0 = %+v", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/exec/run.go" {
		t.Errorf("in-module URI = %q, want module-relative", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %+v", loc.Region)
	}
	// A path outside the module keeps its absolute form.
	if got := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; got != "/elsewhere/x.go" {
		t.Errorf("out-of-module URI = %q", got)
	}
}

// Command sysrcheck runs the project's static-analysis suite over the
// module:
//
//	go run ./cmd/sysrcheck ./...
//
// It loads and type-checks the matched packages (standard library only —
// no module proxy needed), applies every analyzer in the suite, prints the
// surviving diagnostics in file/line order, and exits non-zero when any
// remain. CI runs it as a hard gate; //sysrcheck:ignore directives (with a
// mandatory reason) are the only way past a finding.
//
// Flags:
//
//	-checks a,b   run only the named analyzers
//	-list         print the suite and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"systemr/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysrcheck:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysrcheck:", err)
		os.Exit(2)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysrcheck:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysrcheck:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysrcheck:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sysrcheck: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return analysis.Suite, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range analysis.Suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

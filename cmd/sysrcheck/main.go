// Command sysrcheck runs the project's static-analysis suite over the
// module:
//
//	go run ./cmd/sysrcheck ./...
//
// It loads and type-checks the matched packages exactly once (standard
// library only — no module proxy needed), runs every analyzer in the suite
// in parallel over the shared load, prints the surviving diagnostics in
// file/line order, and exits non-zero when any remain. CI runs it as a
// hard gate; //sysrcheck:ignore directives (with a mandatory reason) are
// the only way past a finding.
//
// Flags:
//
//	-checks a,b   run only the named analyzers
//	-list         print the suite and exit
//	-json         write the findings and per-analyzer timings as JSON
//	-sarif        write the findings as a SARIF 2.1.0 log (CI artifact)
//	-timings      print per-analyzer wall-clock times to stderr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"systemr/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "write findings and timings as JSON to stdout")
	sarifOut := flag.Bool("sarif", false, "write findings as SARIF 2.1.0 to stdout")
	timings := flag.Bool("timings", false, "print per-analyzer wall-clock times to stderr")
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "sysrcheck: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	suite, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysrcheck:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysrcheck:", err)
		os.Exit(2)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysrcheck:", err)
		os.Exit(2)
	}
	loadStart := time.Now()
	pkgs, err := analysis.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysrcheck:", err)
		os.Exit(2)
	}
	loadTime := time.Since(loadStart)
	res, err := analysis.RunSuite(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysrcheck:", err)
		os.Exit(2)
	}

	if *timings {
		fmt.Fprintf(os.Stderr, "load+typecheck: %d pkgs in %v (shared by all analyzers)\n", len(pkgs), loadTime.Round(time.Millisecond))
		sorted := append([]analysis.AnalyzerTiming(nil), res.Timings...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Duration > sorted[j].Duration })
		for _, tm := range sorted {
			fmt.Fprintf(os.Stderr, "%-12s %v\n", tm.Name, tm.Duration.Round(time.Microsecond))
		}
	}

	switch {
	case *jsonOut:
		if err := writeJSON(os.Stdout, root, res); err != nil {
			fmt.Fprintln(os.Stderr, "sysrcheck:", err)
			os.Exit(2)
		}
	case *sarifOut:
		if err := writeSARIF(os.Stdout, root, suite, res.Diags); err != nil {
			fmt.Fprintln(os.Stderr, "sysrcheck:", err)
			os.Exit(2)
		}
	default:
		for _, d := range res.Diags {
			fmt.Println(d)
		}
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "sysrcheck: %d finding(s)\n", len(res.Diags))
		os.Exit(1)
	}
}

// jsonReport is the -json output shape: one object per finding plus the
// per-analyzer wall-clock times, for scripting against the gate.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Timings  []jsonTiming  `json:"timings"`
}

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonTiming struct {
	Analyzer string  `json:"analyzer"`
	Millis   float64 `json:"millis"`
}

func writeJSON(w io.Writer, root string, res *analysis.Result) error {
	rep := jsonReport{Findings: []jsonFinding{}, Timings: []jsonTiming{}}
	for _, d := range res.Diags {
		rep.Findings = append(rep.Findings, jsonFinding{
			File:     relativeURI(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	for _, tm := range res.Timings {
		rep.Timings = append(rep.Timings, jsonTiming{
			Analyzer: tm.Name,
			Millis:   float64(tm.Duration.Microseconds()) / 1000,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return analysis.Suite, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range analysis.Suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

package main

// SARIF 2.1.0 output. The subset below is what code-scanning consumers
// (GitHub's SARIF upload, VS Code SARIF viewers) require: one run, one
// tool driver carrying the analyzer set as rules, and one result per
// diagnostic with a physical location relative to the module root.

import (
	"encoding/json"
	"io"
	"path/filepath"

	"systemr/internal/analysis"
)

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the run as a SARIF 2.1.0 log. root anchors the
// artifact URIs: diagnostics inside the module get module-relative
// forward-slash paths, anything else keeps its absolute path.
func writeSARIF(w io.Writer, root string, suite []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	driver := sarifDriver{
		Name:  "sysrcheck",
		Rules: make([]sarifRule, 0, len(suite)+1),
	}
	for _, a := range suite {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	// Directive misuse (malformed or unused //sysrcheck:ignore) is reported
	// under the driver's own name.
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               "sysrcheck",
		ShortDescription: sarifMessage{Text: "ignore directives must be well-formed, reasoned, and in use"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       relativeURI(root, d.Pos.Filename),
						URIBaseID: "SRCROOT",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	})
}

// relativeURI converts an absolute diagnostic path to a module-relative
// forward-slash URI, falling back to the path unchanged when it lies
// outside root.
func relativeURI(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || rel == ".." || filepath.IsAbs(rel) ||
		(len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)) {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}

package systemr

// Engine observability: a metrics registry built on the per-statement I/O
// accounting split. Exact per-statement numbers live on each statement's own
// accumulator (ExecStats, EXPLAIN ANALYZE); this layer aggregates DB-wide —
// buffer-pool traffic and hit ratio, plan-cache effectiveness, lock waits,
// governor aborts, statement latency, compile time, and the paper's
// W-weighted cost totalled across statements. Exposed via DB.Metrics(), the
// rsql \metrics command, and the registry's Prometheus-text WriteTo.

import (
	"errors"
	"time"

	"systemr/internal/governor"
	"systemr/internal/lock"
	"systemr/internal/metrics"
	"systemr/internal/rss"
)

// dbMetrics bundles the engine's registered instruments. Event-driven
// instruments are updated on the statement path (atomics, no locks);
// everything sourced from live engine state is a gauge refreshed by a
// collector at scrape time.
type dbMetrics struct {
	reg *metrics.Registry

	// Event-driven, statement path.
	statements     *metrics.Counter
	stmtErrors     *metrics.Counter
	govAborts      *metrics.Counter
	stmtCanceled   *metrics.Counter
	stmtSeconds    *metrics.Histogram
	compileSeconds *metrics.Histogram
	lockWait       *metrics.Histogram
	stmtCost       *metrics.Counter
	stmtFetches    *metrics.Counter
	stmtRSI        *metrics.Counter
	stmtRows       *metrics.Counter
	txnBegins      *metrics.Counter
	txnCommits     *metrics.Counter
	txnRollbacks   *metrics.Counter
	deadlocks      *metrics.Counter
	lockTimeouts   *metrics.Counter
	execBatchRows  *metrics.Histogram
	parallelDegree *metrics.Histogram

	// Estimation feedback.
	estMissFactor     *metrics.Histogram
	feedbackMarks     *metrics.Counter
	feedbackRefreshes *metrics.Counter

	// MVCC.
	writeConflicts  *metrics.Counter
	vacuumRuns      *metrics.Counter
	vacuumReclaimed *metrics.Counter
	versionChainLen *metrics.Histogram
}

// newDBMetrics registers the engine's instruments and the scrape-time
// collector over db's live state, and hooks the lock manager's wait
// observer.
func newDBMetrics(db *DB) *dbMetrics {
	reg := metrics.NewRegistry()
	m := &dbMetrics{
		reg: reg,
		statements: reg.NewCounter("systemr_statements_total",
			"Statements executed (all outcomes)"),
		stmtErrors: reg.NewCounter("systemr_statement_errors_total",
			"Statements that returned an error"),
		govAborts: reg.NewCounter("systemr_governor_aborts_total",
			"Statements aborted by the execution governor (budget exceeded)"),
		stmtCanceled: reg.NewCounter("systemr_statements_canceled_total",
			"Statements aborted by context cancellation"),
		stmtSeconds: reg.NewHistogram("systemr_statement_seconds",
			"Statement wall-clock latency, locks and compilation included", nil),
		compileSeconds: reg.NewHistogram("systemr_compile_seconds",
			"Time spent compiling (parse, semantic analysis, access path selection)", nil),
		lockWait: reg.NewHistogram("systemr_lock_wait_seconds",
			"Time statements spent blocked acquiring table locks", nil),
		stmtCost: reg.NewCounter("systemr_statement_cost_total",
			"Measured statement cost summed in the paper's units: PAGE FETCHES + W*(RSI CALLS), with this instance's W"),
		stmtFetches: reg.NewCounter("systemr_statement_page_fetches_total",
			"Page fetches (including temp-list writes) measured across statements"),
		stmtRSI: reg.NewCounter("systemr_statement_rsi_calls_total",
			"RSI calls measured across statements"),
		stmtRows: reg.NewCounter("systemr_statement_rows_total",
			"Rows returned or affected across statements"),
		txnBegins: reg.NewCounter("systemr_txn_begins_total",
			"Explicit transactions started (BEGIN / DB.Begin; autocommit excluded)"),
		txnCommits: reg.NewCounter("systemr_txn_commits_total",
			"Explicit transactions committed"),
		txnRollbacks: reg.NewCounter("systemr_txn_rollbacks_total",
			"Explicit transactions rolled back, by the session or by the engine (deadlock victim, lock timeout)"),
		deadlocks: reg.NewCounter("systemr_deadlocks_total",
			"Statements aborted as deadlock victims"),
		lockTimeouts: reg.NewCounter("systemr_lock_timeouts_total",
			"Statements aborted by the lock-wait timeout"),
		execBatchRows: reg.NewHistogram("systemr_exec_batch_rows",
			"Rows per batch crossing each statement's root operator boundary",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
		parallelDegree: reg.NewHistogram("systemr_parallel_workers",
			"Worker count of each parallel exchange opened",
			[]float64{1, 2, 4, 8, 16}),
		estMissFactor: reg.NewHistogram("systemr_estimate_miss_factor",
			"Misestimation q-error max(est,act)/min(est,act) of each executed SELECT's result cardinality",
			[]float64{1, 2, 5, 10, 100, 1000}),
		feedbackMarks: reg.NewCounter("systemr_feedback_marks_total",
			"Cached plans marked for recompilation after missing estimates by the configured ratio"),
		feedbackRefreshes: reg.NewCounter("systemr_feedback_refreshes_total",
			"Feedback-triggered statistics refreshes (UPDATE STATISTICS on a marked plan's tables)"),
		writeConflicts: reg.NewCounter("systemr_write_conflicts_total",
			"Transactions aborted by first-updater-wins write conflicts"),
		vacuumRuns: reg.NewCounter("systemr_vacuum_runs_total",
			"Vacuum passes executed (automatic and DB.Vacuum)"),
		vacuumReclaimed: reg.NewCounter("systemr_vacuum_reclaimed_total",
			"Dead row versions physically reclaimed by vacuum"),
		versionChainLen: reg.NewHistogram("systemr_version_chain_length",
			"Version-chain length behind each live row version, observed at vacuum",
			[]float64{1, 2, 4, 8, 16, 32, 64}),
	}

	// Collect-on-scrape gauges from live engine state.
	bufReads := reg.NewGauge("systemr_buffer_logical_reads",
		"Page accesses through the buffer pool, hits included (DB-global)")
	bufFetches := reg.NewGauge("systemr_buffer_page_fetches",
		"Buffer-pool misses — simulated I/Os (DB-global)")
	bufWritten := reg.NewGauge("systemr_buffer_pages_written",
		"Temporary-list pages written (DB-global)")
	bufHitRatio := reg.NewGauge("systemr_buffer_hit_ratio",
		"Fraction of page accesses served from the buffer pool")
	bufEvictions := reg.NewGauge("systemr_buffer_evictions",
		"Pages evicted by LRU capacity pressure")
	bufCapacity := reg.NewGauge("systemr_buffer_capacity_pages",
		"Buffer pool capacity in pages")
	rsiCalls := reg.NewGauge("systemr_rsi_calls",
		"Tuples returned across the RSS interface (DB-global)")
	versionsScanned := reg.NewGauge("systemr_versions_scanned",
		"Heap row versions examined by scans (DB-global)")
	versionsSkipped := reg.NewGauge("systemr_versions_skipped",
		"Heap row versions skipped as invisible to the scanning snapshot (DB-global)")
	cacheHits := reg.NewGauge("systemr_plan_cache_hits",
		"Plan-cache hits (statements that skipped compilation)")
	cacheMisses := reg.NewGauge("systemr_plan_cache_misses",
		"Plan-cache misses (statements that compiled)")
	cacheInval := reg.NewGauge("systemr_plan_cache_invalidations",
		"Cached plans discarded because the catalog version moved")
	cacheEvict := reg.NewGauge("systemr_plan_cache_evictions",
		"Cached plans discarded by LRU capacity pressure")
	cacheEntries := reg.NewGauge("systemr_plan_cache_entries",
		"Compiled plans currently cached")
	cacheCapacity := reg.NewGauge("systemr_plan_cache_capacity",
		"Plan cache capacity in entries (0 = caching disabled)")
	compilations := reg.NewGauge("systemr_compilations",
		"Optimizer invocations since startup")
	catalogVersion := reg.NewGauge("systemr_catalog_version",
		"Current catalog version / statistics epoch")
	locksOutstanding := reg.NewGauge("systemr_locks_outstanding",
		"Table locks currently granted")
	txnsActive := reg.NewGauge("systemr_txns_active",
		"Explicit transactions currently open")
	openScans := reg.NewGauge("systemr_open_scans",
		"RSI scans currently open engine-wide")
	costW := reg.NewGauge("systemr_cost_w",
		"The optimizer's CPU weighting factor W in COST = PAGE FETCHES + W*(RSI CALLS)")

	reg.OnCollect(func() {
		io := db.stats.Snapshot()
		bufReads.Set(float64(io.LogicalReads))
		bufFetches.Set(float64(io.PageFetches))
		bufWritten.Set(float64(io.PagesWritten))
		ratio := 0.0
		if io.LogicalReads > 0 {
			ratio = 1 - float64(io.PageFetches)/float64(io.LogicalReads)
		}
		bufHitRatio.Set(ratio)
		bufEvictions.Set(float64(db.pool.Evictions()))
		bufCapacity.Set(float64(db.pool.Capacity()))
		rsiCalls.Set(float64(io.RSICalls))
		versionsScanned.Set(float64(io.VersionsScanned))
		versionsSkipped.Set(float64(io.VersionsSkipped))
		cs := db.PlanCacheStats()
		cacheHits.Set(float64(cs.Hits))
		cacheMisses.Set(float64(cs.Misses))
		cacheInval.Set(float64(cs.Invalidations))
		cacheEvict.Set(float64(cs.Evictions))
		cacheEntries.Set(float64(cs.Entries))
		cacheCapacity.Set(float64(cs.Capacity))
		compilations.Set(float64(cs.Compilations))
		catalogVersion.Set(float64(cs.CatalogVersion))
		locksOutstanding.Set(float64(db.locks.Outstanding()))
		txnsActive.Set(float64(db.activeTxns.Load()))
		openScans.Set(float64(rss.OpenScans()))
		costW.Set(db.cfg.W)
	})

	db.locks.SetWaitObserver(func(d time.Duration) {
		m.lockWait.Observe(d.Seconds())
	})
	return m
}

// Metrics returns the engine's metrics registry: counters, gauges, and
// histograms over buffer-pool traffic, plan-cache effectiveness, lock waits,
// governor aborts, and statement latency/cost. Snapshot() returns structured
// samples; WriteTo renders the Prometheus text exposition format.
func (db *DB) Metrics() *metrics.Registry { return db.metrics.reg }

// observeStatement records one finished statement: latency, outcome, and —
// when the error was a governor abort — which budget family tripped.
func (db *DB) observeStatement(start time.Time, err error) {
	m := db.metrics
	if m == nil {
		return
	}
	m.statements.Inc()
	m.stmtSeconds.Observe(time.Since(start).Seconds())
	if err == nil {
		return
	}
	m.stmtErrors.Inc()
	if errors.Is(err, governor.ErrBudgetExceeded) {
		m.govAborts.Inc()
	}
	if errors.Is(err, governor.ErrCanceled) {
		m.stmtCanceled.Inc()
	}
	if errors.Is(err, lock.ErrDeadlock) {
		m.deadlocks.Inc()
	}
	if errors.Is(err, lock.ErrLockTimeout) {
		m.lockTimeouts.Inc()
	}
	if errors.Is(err, rss.ErrWriteConflict) {
		m.writeConflicts.Inc()
	}
}

// observeCompile records one compilation's duration.
func (db *DB) observeCompile(start time.Time) {
	if db.metrics == nil {
		return
	}
	db.metrics.compileSeconds.Observe(time.Since(start).Seconds())
}

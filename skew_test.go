package systemr_test

// The acceptance test for histogram statistics: on a zipfian-skewed relation
// the uniform Table 1 model prices a hot-key probe like any other key and
// picks the index; the histogram knows the hot key covers a double-digit
// share of the relation, where an index scan would fetch most pages anyway
// (unclustered, one RSI call per row), so the plan flips to a segment scan.
// Cold keys must keep the index under both models.

import (
	"fmt"
	"strings"
	"testing"

	"systemr"
	"systemr/internal/workload"
)

const skewSeed = 7

// noFeedback keeps plans stable while the test inspects them.
func skewEngine(disableHist bool) systemr.Config {
	return systemr.Config{DisableHistograms: disableHist, RecompileMissRatio: -1}
}

func TestSkewPlanFlip(t *testing.T) {
	hist, hot := workload.NewSkewDB(workload.SkewConfig{Seed: skewSeed, Engine: skewEngine(false)})
	uni, _ := workload.NewSkewDB(workload.SkewConfig{Seed: skewSeed, Engine: skewEngine(true)})

	hotQ := fmt.Sprintf("SELECT VAL FROM EVENTS WHERE KEY = %d", hot)

	// The hot key's true cardinality, for the estimate assertion below.
	res, err := hist.Query(fmt.Sprintf("SELECT COUNT(*) FROM EVENTS WHERE KEY = %d", hot))
	if err != nil {
		t.Fatal(err)
	}
	hotRows := res.Rows[0][0].(int64)
	if hotRows < 10000 { // zipf s=1.3 over 1000 keys: the hot key is >10% of 100k rows
		t.Fatalf("workload not skewed enough: hot key %d has %d rows", hot, hotRows)
	}

	// Uniform model: ~100k/1000 ≈ 100 estimated rows — the index looks cheap.
	uniPlan, err := uni.Explain(hotQ)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(uniPlan, "INDEXSCAN") {
		t.Fatalf("uniform model should probe the index for the hot key:\n%s", uniPlan)
	}

	// Histogram: the hot key sits in its own singleton bucket, so the
	// estimate is exact and the plan flips to the segment scan.
	histPlan, err := hist.Explain(hotQ)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(histPlan, "SEGSCAN") || strings.Contains(histPlan, "INDEXSCAN") {
		t.Fatalf("histogram model should flip the hot key to a segment scan:\n%s", histPlan)
	}
	if want := fmt.Sprintf("rows=%d.0", hotRows); !strings.Contains(histPlan, want) {
		t.Fatalf("heavy-hitter isolation should estimate the hot key exactly (%s):\n%s", want, histPlan)
	}

	// Both plans return the same (correct) result.
	hres, err := hist.Query(hotQ)
	if err != nil {
		t.Fatal(err)
	}
	ures, err := uni.Query(hotQ)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(hres.Rows)) != hotRows || int64(len(ures.Rows)) != hotRows {
		t.Fatalf("rows: hist=%d uniform=%d want %d", len(hres.Rows), len(ures.Rows), hotRows)
	}

	// A cold-tail key stays on the index under the histogram model too — the
	// flip is driven by the data, not a blanket preference.
	coldPlan, err := hist.Explain("SELECT VAL FROM EVENTS WHERE KEY = 900")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(coldPlan, "INDEXSCAN") {
		t.Fatalf("cold key should keep the index scan:\n%s", coldPlan)
	}
}

package systemr_test

// Per-statement I/O attribution under concurrency: with every statement
// measuring on its own accumulator, a statement's EXPLAIN ANALYZE must be
// byte-identical (modulo wall times) whether it runs alone or races other
// statements on disjoint tables. Under the old DB-global counters the
// operator fetch deltas and the statement totals absorbed concurrent
// statements' I/O and RSI traffic, so this equality only holds with
// statement-scoped accounting. Run under -race in CI.

import (
	"fmt"
	"sync"
	"testing"

	"systemr"
)

// attributionDB builds two disjoint multi-page tables with indexes and
// statistics over a pool large enough that, once warm, no statement evicts
// another's pages — making per-statement fetch counts exactly reproducible.
func attributionDB(t *testing.T) *systemr.DB {
	t.Helper()
	db := systemr.Open(systemr.Config{BufferPages: 4096})
	for _, tbl := range []string{"T1", "T2"} {
		db.MustExec(fmt.Sprintf("CREATE TABLE %s (A INTEGER, B INTEGER)", tbl))
		db.MustExec(fmt.Sprintf("CREATE INDEX %s_A ON %s (A)", tbl, tbl))
		for i := 0; i < 200; i += 10 {
			stmt := fmt.Sprintf("INSERT INTO %s VALUES ", tbl)
			for j := i; j < i+10; j++ {
				if j > i {
					stmt += ", "
				}
				stmt += fmt.Sprintf("(%d, %d)", j, (j*7)%100)
			}
			db.MustExec(stmt)
		}
	}
	db.MustExec("UPDATE STATISTICS")
	return db
}

func TestConcurrentAttributionExact(t *testing.T) {
	db := attributionDB(t)
	queries := []string{
		"SELECT A, B FROM T1 WHERE A < 50 ORDER BY B",
		"SELECT B FROM T2 WHERE A < 120",
	}

	// Steady state: one warm-up run per query loads the pages and the plan
	// cache, then two more solo runs must already agree with each other —
	// the baseline the concurrent runs are held to.
	solo := make([]string, len(queries))
	for i, q := range queries {
		if _, err := db.ExplainAnalyze(q); err != nil {
			t.Fatal(err)
		}
		first, err := db.ExplainAnalyze(q)
		if err != nil {
			t.Fatal(err)
		}
		second, err := db.ExplainAnalyze(q)
		if err != nil {
			t.Fatal(err)
		}
		if scrubTimes(first) != scrubTimes(second) {
			t.Fatalf("query %d is not deterministic solo:\n--- first ---\n%s\n--- second ---\n%s", i, first, second)
		}
		solo[i] = scrubTimes(first)
	}

	// Race the two statements: every concurrent run's attribution must equal
	// the solo baseline exactly — no cross-statement fetches, RSI calls, or
	// cost leaking into the operator deltas or the statement totals.
	const goroutinesPerQuery, iters = 2, 10
	var wg sync.WaitGroup
	mismatch := make(chan string, len(queries)*goroutinesPerQuery)
	for i, q := range queries {
		for g := 0; g < goroutinesPerQuery; g++ {
			i, q := i, q
			wg.Add(1)
			go func() {
				defer wg.Done()
				for n := 0; n < iters; n++ {
					out, err := db.ExplainAnalyze(q)
					if err != nil {
						mismatch <- fmt.Sprintf("query %d: %v", i, err)
						return
					}
					if got := scrubTimes(out); got != solo[i] {
						mismatch <- fmt.Sprintf("query %d attribution drifted under concurrency:\n--- solo ---\n%s\n--- concurrent ---\n%s", i, solo[i], got)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(mismatch)
	for m := range mismatch {
		t.Fatal(m)
	}
}

// TestConcurrentLastStatsConsistent checks the statement-scoped ledger from
// the API side: under the same disjoint-table race, LastStats — whatever
// statement it describes — always carries one statement's self-consistent
// numbers, never a blend (a blend shows up as a cost exceeding any single
// statement's solo cost).
func TestConcurrentLastStatsConsistent(t *testing.T) {
	db := attributionDB(t)
	queries := []string{
		"SELECT A, B FROM T1 WHERE A < 50 ORDER BY B",
		"SELECT B FROM T2 WHERE A < 120",
	}
	maxCost := 0.0
	for _, q := range queries {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Query(q); err != nil { // steady state
			t.Fatal(err)
		}
		if c := db.LastStats().Cost(0.033); c > maxCost {
			maxCost = c
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		q := queries[g%len(queries)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 10; n++ {
				if _, err := db.Query(q); err != nil {
					errs <- err
					return
				}
				if c := db.LastStats().Cost(0.033); c > maxCost {
					errs <- fmt.Errorf("LastStats cost %.2f exceeds any solo statement's %.2f: ledgers blended", c, maxCost)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

package systemr_test

import (
	"fmt"
	"testing"

	"systemr/internal/workload"
)

// TestScale loads a 50k-row EMP database and validates query results against
// independently computed counts — a smoke test that page management, B-trees,
// the optimizer, and the executor hold up beyond toy sizes.
func TestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	const emps, depts, jobs = 50000, 500, 40
	db := workload.NewEmpDB(workload.EmpConfig{
		Emps: emps, Depts: depts, Jobs: jobs, Seed: 71,
		BufferPages: 256, ClusterEmpByDno: true,
	})

	// Full count.
	res, err := db.Query("SELECT COUNT(*) FROM EMP")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != emps {
		t.Fatalf("count: %v", res.Rows[0][0])
	}

	// Per-department counts sum back to the total, via the clustered index.
	res, err = db.Query("SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != depts {
		t.Fatalf("groups: %d", len(res.Rows))
	}
	var sum int64
	for _, r := range res.Rows {
		sum += r[1].(int64)
	}
	if sum != emps {
		t.Fatalf("group counts sum to %d", sum)
	}

	// Unique-index point lookups across the key space.
	for _, k := range []int{0, 1, emps / 2, emps - 1} {
		res, err = db.Query(fmt.Sprintf("SELECT NAME FROM EMP WHERE EMPNO = %d", k))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("EMPNO=%d: %d rows", k, len(res.Rows))
		}
		if got := db.LastStats().PageFetches; got > 10 {
			t.Fatalf("point lookup fetched %d pages", got)
		}
	}

	// Join result count matches a computed expectation: every employee has
	// exactly one department and one job.
	res, err = db.Query(`SELECT COUNT(*) FROM EMP, DEPT, JOB
		WHERE EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != emps {
		t.Fatalf("3-way join count: %v", res.Rows[0][0])
	}

	// A selective range via the SAL index agrees with a residual-only scan.
	res, err = db.Query("SELECT COUNT(*) FROM EMP WHERE SAL BETWEEN 20000 AND 21000")
	if err != nil {
		t.Fatal(err)
	}
	viaIndex := res.Rows[0][0].(int64)
	res, err = db.Query("SELECT COUNT(*) FROM EMP WHERE SAL + 0 BETWEEN 20000 AND 21000")
	if err != nil {
		t.Fatal(err)
	}
	if viaIndex != res.Rows[0][0].(int64) {
		t.Fatalf("index path %d != residual path %v", viaIndex, res.Rows[0][0])
	}

	// DML at scale: delete one department, counts adjust.
	res, err = db.Query("SELECT COUNT(*) FROM EMP WHERE DNO = 250")
	if err != nil {
		t.Fatal(err)
	}
	inDept := res.Rows[0][0].(int64)
	del := db.MustExec("DELETE FROM EMP WHERE DNO = 250")
	if int64(del.Affected) != inDept {
		t.Fatalf("deleted %d, expected %d", del.Affected, inDept)
	}
	res, _ = db.Query("SELECT COUNT(*) FROM EMP")
	if res.Rows[0][0].(int64) != emps-inDept {
		t.Fatalf("count after delete: %v", res.Rows[0][0])
	}
}

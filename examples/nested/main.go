// Nested queries (Section 6): scalar and set subqueries, correlation, the
// paper's employees-earning-more-than-their-manager examples, and the
// same-value evaluation cache.
package main

import (
	"fmt"

	"systemr"
	"systemr/internal/workload"
)

func main() {
	db := workload.NewEmpDB(workload.EmpConfig{
		Emps: 2000, Depts: 50, Jobs: 10, Seed: 3, ClusterEmpByDno: true,
	})

	// Evaluated-once scalar subquery — the paper's first Section 6 example.
	q1 := "SELECT NAME FROM EMP WHERE SAL > (SELECT AVG(SAL) FROM EMP)"
	run(db, "Above-average earners", q1)

	// IN subquery returning a set of values.
	q2 := `SELECT NAME FROM EMP
	       WHERE DNO IN (SELECT DNO FROM DEPT WHERE LOC = 'DENVER') AND JOB = 1`
	run(db, "Denver clerks (IN subquery)", q2)

	// Correlated subquery — "employees that earn more than their manager".
	q3 := `SELECT NAME FROM EMP X
	       WHERE SAL > (SELECT SAL FROM EMP WHERE EMPNO = X.MANAGER)`
	run(db, "Earn more than their manager (correlated)", q3)

	// Three-level nesting — "more than their manager's manager".
	q4 := `SELECT NAME FROM EMP X WHERE SAL >
	         (SELECT SAL FROM EMP WHERE EMPNO =
	           (SELECT MANAGER FROM EMP WHERE EMPNO = X.MANAGER))`
	run(db, "Earn more than their manager's manager (3 levels)", q4)

	// The Section 6 cache: with EMP clustered (ordered) on DNO, a subquery
	// correlated on DNO re-evaluates only when the DNO changes.
	q5 := "SELECT NAME FROM EMP X WHERE SAL > (SELECT AVG(SAL) FROM EMP WHERE DNO = X.DNO)"
	run(db, "Above their department's average (cached re-evaluation)", q5)
	fmt.Printf("  → the correlated subquery ran %d times for 2000 candidate tuples,\n",
		db.LastStats().SubqueryEvals)
	fmt.Println("    because the outer scan delivers tuples in DNO order (Section 6).")
}

func run(db *systemr.DB, title, query string) {
	res, err := db.Query(query)
	if err != nil {
		panic(err)
	}
	st := db.LastStats()
	fmt.Printf("%-55s → %5d rows, %4d subquery evals, cost %8.1f\n",
		title, len(res.Rows), st.SubqueryEvals, st.Cost(0.033))
}

// The paper's Figure 1 walkthrough: the EMP/DEPT/JOB clerk query, the
// optimizer's search tree (Figures 2-6), the chosen plan, and the measured
// cost against the no-optimizer baseline.
package main

import (
	"fmt"

	"systemr/internal/core"
	"systemr/internal/sem"
	"systemr/internal/sql"
	"systemr/internal/workload"
)

func main() {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 1500, Depts: 40, Jobs: 8, Seed: 7})

	fmt.Println("Figure 1 query:")
	fmt.Println(workload.Figure1Query)
	fmt.Println()

	// Re-plan with the search-tree tracer attached — the machine is doing
	// exactly what Figures 2-6 of the paper illustrate.
	stmt, err := sql.Parse(workload.Figure1Query)
	if err != nil {
		panic(err)
	}
	blk, err := sem.Analyze(stmt.(*sql.SelectStmt), db.Catalog())
	if err != nil {
		panic(err)
	}
	tr := &core.Trace{}
	cfg := db.OptimizerConfig()
	cfg.Trace = tr
	q, err := core.New(db.Catalog(), cfg).Optimize(blk)
	if err != nil {
		panic(err)
	}
	fmt.Print(tr.Render())
	fmt.Println()
	fmt.Println("Chosen plan:")
	fmt.Print(q.Explain())

	// Execute through the public API and report the paper's cost terms.
	res, err := db.Query(workload.Figure1Query)
	if err != nil {
		panic(err)
	}
	st := db.LastStats()
	fmt.Printf("\n%d clerks in Denver departments; measured %d page fetches, %d RSI calls (cost %.1f)\n",
		len(res.Rows), st.PageFetches, st.RSICalls, st.Cost(core.DefaultW))

	// The same database and query without access path selection.
	naive := workload.NewEmpDB(workload.EmpConfig{Emps: 1500, Depts: 40, Jobs: 8, Seed: 7, Naive: true})
	if _, err := naive.Query(workload.Figure1Query); err != nil {
		panic(err)
	}
	nst := naive.LastStats()
	fmt.Printf("Naive baseline: %d page fetches, %d RSI calls (cost %.1f) — %.0fx more expensive\n",
		nst.PageFetches, nst.RSICalls, nst.Cost(core.DefaultW),
		nst.Cost(core.DefaultW)/st.Cost(core.DefaultW))
}

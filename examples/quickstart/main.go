// Quickstart: create tables and indexes, load data, run queries, and read
// the optimizer's chosen access paths with EXPLAIN.
package main

import (
	"fmt"

	"systemr"
)

func main() {
	db := systemr.Open(systemr.Config{})

	// Schema: the paper's employees-and-departments world.
	db.MustExec("CREATE TABLE EMP (NAME VARCHAR, DNO INTEGER, JOB VARCHAR, SAL FLOAT)")
	db.MustExec("CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR, LOC VARCHAR)")
	db.MustExec("CREATE INDEX EMP_DNO ON EMP (DNO)")
	db.MustExec("CREATE UNIQUE INDEX DEPT_DNO ON DEPT (DNO)")

	// Data.
	depts := []string{"ENGINEERING", "SALES", "SUPPORT"}
	locs := []string{"DENVER", "SAN JOSE", "TUCSON"}
	for i, d := range depts {
		db.MustExec(fmt.Sprintf("INSERT INTO DEPT VALUES (%d, '%s', '%s')", i+1, d, locs[i]))
	}
	for i := 0; i < 300; i++ {
		job := []string{"CLERK", "ENGINEER", "MANAGER"}[i%3]
		db.MustExec(fmt.Sprintf("INSERT INTO EMP VALUES ('EMP%03d', %d, '%s', %d.0)",
			i, i%3+1, job, 20000+i*100))
	}

	// The optimizer reads statistics gathered by UPDATE STATISTICS — run it
	// after loading, exactly as System R's users did.
	db.MustExec("UPDATE STATISTICS")

	// A selective query: the optimizer probes the EMP_DNO index.
	res, err := db.Query(`SELECT NAME, SAL FROM EMP WHERE DNO = 2 AND SAL > 40000 ORDER BY SAL DESC`)
	if err != nil {
		panic(err)
	}
	fmt.Println("High earners in department 2:")
	fmt.Print(systemr.FormatResult(res))

	stats := db.LastStats()
	fmt.Printf("\nMeasured: %d page fetches, %d RSI calls\n\n", stats.PageFetches, stats.RSICalls)

	// EXPLAIN shows the chosen access path with the paper's cost terms.
	plan, err := db.Explain("SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER'")
	if err != nil {
		panic(err)
	}
	fmt.Println("Join plan chosen by access path selection:")
	fmt.Print(plan)

	// DML flows through the same machinery.
	r := db.MustExec("UPDATE EMP SET SAL = SAL * 1.1 WHERE JOB = 'CLERK'")
	fmt.Printf("\nGave %d clerks a raise.\n", r.Affected)
	r = db.MustExec("DELETE FROM EMP WHERE SAL < 21000")
	fmt.Printf("Deleted %d underpaid rows.\n", r.Affected)
}

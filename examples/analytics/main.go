// Analytics workload: grouped aggregation, interesting orders, and the
// sort-avoidance the paper's "interesting ordering" bookkeeping buys — a
// reporting scenario over a sales database.
package main

import (
	"fmt"

	"systemr"
)

func main() {
	db := systemr.Open(systemr.Config{BufferPages: 128})
	db.MustExec("CREATE TABLE SALES (REGION INTEGER, PRODUCT INTEGER, DAY INTEGER, AMOUNT FLOAT)")
	db.MustExec("CREATE TABLE REGIONS (REGION INTEGER, RNAME VARCHAR)")
	db.MustExec("CREATE UNIQUE INDEX REGIONS_PK ON REGIONS (REGION)")

	for r := 1; r <= 8; r++ {
		db.MustExec(fmt.Sprintf("INSERT INTO REGIONS VALUES (%d, 'REGION%d')", r, r))
	}
	// Load sales clustered by REGION so the clustered index is genuine.
	for r := 1; r <= 8; r++ {
		for i := 0; i < 1500; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO SALES VALUES (%d, %d, %d, %d.50)",
				r, i%40, i%365, 10+(i*13)%990))
		}
	}
	db.MustExec("CREATE CLUSTERED INDEX SALES_REGION ON SALES (REGION)")
	db.MustExec("CREATE INDEX SALES_PRODUCT ON SALES (PRODUCT)")
	db.MustExec("UPDATE STATISTICS")

	// GROUP BY on the clustered column: the index order IS the grouping
	// order, so the optimizer's plan contains no sort at all.
	report := `SELECT REGION, COUNT(*), SUM(AMOUNT), AVG(AMOUNT)
	           FROM SALES GROUP BY REGION ORDER BY REGION`
	plan, _ := db.Explain(report)
	fmt.Println("Per-region report plan (no sort — the interesting order came free):")
	fmt.Print(plan)
	res, err := db.Query(report)
	if err != nil {
		panic(err)
	}
	fmt.Print(systemr.FormatResult(res))
	s1 := db.LastStats()

	// GROUP BY on an unclustered column: the optimizer must sort into a
	// temporary list first.
	byProduct := "SELECT PRODUCT, SUM(AMOUNT) FROM SALES WHERE REGION = 3 GROUP BY PRODUCT"
	plan2, _ := db.Explain(byProduct)
	fmt.Println("\nPer-product report for one region (index probe, then sort+group):")
	fmt.Print(plan2)
	if _, err := db.Query(byProduct); err != nil {
		panic(err)
	}
	s2 := db.LastStats()

	fmt.Printf("\nMeasured: whole-table grouped report: %d page fetches + %d written\n",
		s1.PageFetches, s1.PagesWritten)
	fmt.Printf("          single-region grouped report: %d page fetches + %d written\n",
		s2.PageFetches, s2.PagesWritten)

	// Join + aggregation: region names on the report.
	joined := `SELECT RNAME, COUNT(*) FROM SALES, REGIONS
	           WHERE SALES.REGION = REGIONS.REGION AND AMOUNT > 900
	           GROUP BY RNAME`
	res, err = db.Query(joined)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nBig-ticket sales by region name:")
	fmt.Print(systemr.FormatResult(res))
}

package systemr_test

// Estimation-quality benchmark: the same zipfian workload planned under the
// uniform Table 1 model and under histograms, recording each query's
// estimated vs. actual rows (as the symmetric q-error the feedback loop
// uses) and whether the chosen access path flipped. TestBenchStatsJSON
// writes BENCH_stats.json for CI trending and asserts this PR's acceptance
// criteria: histograms cut the mean estimation error and flip at least one
// plan to the cheaper access path.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"systemr/internal/compile"
	"systemr/internal/workload"
)

type statsBenchQuery struct {
	Query       string  `json:"query"`
	ActualRows  int     `json:"actual_rows"`
	UniformEst  float64 `json:"uniform_est_rows"`
	HistEst     float64 `json:"hist_est_rows"`
	UniformQErr float64 `json:"uniform_q_error"`
	HistQErr    float64 `json:"hist_q_error"`
	PlanFlipped bool    `json:"plan_flipped"`
}

type statsBenchReport struct {
	Rows            int               `json:"rows"`
	Keys            int               `json:"keys"`
	ZipfS           float64           `json:"zipf_s"`
	Queries         []statsBenchQuery `json:"queries"`
	UniformMeanQErr float64           `json:"uniform_mean_q_error"`
	HistMeanQErr    float64           `json:"hist_mean_q_error"`
	PlanFlips       int               `json:"plan_flips"`
}

// TestBenchStatsJSON plans and runs a mixed predicate set (hot/mid/cold
// equality, ranges, BETWEEN, IN, an unindexed column) under both models and
// writes BENCH_stats.json.
func TestBenchStatsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark measurement; skipped in -short")
	}
	cfg := workload.SkewConfig{Seed: skewSeed}
	hist, hot := workload.NewSkewDB(workload.SkewConfig{Seed: cfg.Seed, Engine: skewEngine(false)})
	uni, _ := workload.NewSkewDB(workload.SkewConfig{Seed: cfg.Seed, Engine: skewEngine(true)})

	queries := []string{
		fmt.Sprintf("SELECT VAL FROM EVENTS WHERE KEY = %d", hot),
		"SELECT VAL FROM EVENTS WHERE KEY = 10",
		"SELECT VAL FROM EVENTS WHERE KEY = 900",
		"SELECT VAL FROM EVENTS WHERE KEY < 5",
		"SELECT VAL FROM EVENTS WHERE KEY > 500",
		fmt.Sprintf("SELECT VAL FROM EVENTS WHERE KEY BETWEEN %d AND %d", hot, hot+2),
		fmt.Sprintf("SELECT VAL FROM EVENTS WHERE KEY IN (%d, 900)", hot),
		"SELECT ID FROM EVENTS WHERE VAL < 100",
	}

	report := statsBenchReport{Rows: 100000, Keys: 1000, ZipfS: 1.3}
	var uniSum, histSum float64
	for _, q := range queries {
		uq, err := uni.PlanSelect(q)
		if err != nil {
			t.Fatal(err)
		}
		hq, err := hist.PlanSelect(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := hist.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		actual := len(res.Rows)

		uniPlan, err := uni.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		histPlan, err := hist.Explain(q)
		if err != nil {
			t.Fatal(err)
		}

		entry := statsBenchQuery{
			Query:       q,
			ActualRows:  actual,
			UniformEst:  uq.Root.Est().Rows,
			HistEst:     hq.Root.Est().Rows,
			PlanFlipped: strings.Contains(uniPlan, "INDEXSCAN") != strings.Contains(histPlan, "INDEXSCAN"),
		}
		entry.UniformQErr = compile.MissFactor(entry.UniformEst, float64(actual))
		entry.HistQErr = compile.MissFactor(entry.HistEst, float64(actual))
		uniSum += entry.UniformQErr
		histSum += entry.HistQErr
		if entry.PlanFlipped {
			report.PlanFlips++
		}
		report.Queries = append(report.Queries, entry)
	}
	report.UniformMeanQErr = uniSum / float64(len(queries))
	report.HistMeanQErr = histSum / float64(len(queries))

	if report.HistMeanQErr >= report.UniformMeanQErr {
		t.Errorf("histograms did not reduce the mean q-error: hist %.2f vs uniform %.2f",
			report.HistMeanQErr, report.UniformMeanQErr)
	}
	if report.PlanFlips < 1 {
		t.Errorf("no plan flipped between the uniform and histogram models")
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_stats.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_stats.json:\n%s", data)
}

module systemr

go 1.22

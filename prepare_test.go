package systemr_test

import (
	"strings"
	"testing"
)

func TestPrepareRunMany(t *testing.T) {
	db := newEmpDeptJobDB(t)
	stmt, err := db.Prepare("SELECT NAME FROM EMP WHERE DNO = 7 ORDER BY NAME")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stmt.Explain(), "QUERY BLOCK") {
		t.Fatal("compiled plan must explain")
	}
	var first []string
	for run := 0; run < 5; run++ {
		res, err := stmt.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 10 {
			t.Fatalf("run %d: %d rows", run, len(res.Rows))
		}
		if run == 0 {
			for _, r := range res.Rows {
				first = append(first, r[0].(string))
			}
			continue
		}
		for i, r := range res.Rows {
			if r[0].(string) != first[i] {
				t.Fatalf("run %d differs at %d", run, i)
			}
		}
	}
	// The compiled plan keeps working as data changes (stale statistics are
	// System R behavior; correctness is unaffected).
	db.MustExec("INSERT INTO EMP VALUES ('AAA', 7, 5, 1.0)")
	res, err := stmt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 || res.Rows[0][0].(string) != "AAA" {
		t.Fatalf("post-insert run: %d rows", len(res.Rows))
	}
}

func TestPrepareRejectsNonSelect(t *testing.T) {
	db := newEmpDeptJobDB(t)
	if _, err := db.Prepare("DELETE FROM EMP"); err == nil {
		t.Fatal("Prepare(DELETE) must fail")
	}
	if _, err := db.Prepare("SELECT x FROM nope"); err == nil {
		t.Fatal("Prepare of invalid query must fail")
	}
}

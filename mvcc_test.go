package systemr_test

// MVCC snapshot-isolation surface tests (PR 8): a cursor keeps reading the
// version set it opened over while writers commit around it; an explicit
// transaction gets repeatable reads from one BEGIN-time snapshot; concurrent
// updates of the same row resolve by first-updater-wins (ErrWriteConflict,
// retryable); and vacuum physically reclaims versions only once no live
// snapshot can reach them.

import (
	"errors"
	"fmt"
	"testing"

	"systemr"
)

// mvccDB is a small single-table fixture: T(A, B) with rows (i, i) for
// i in [0, n).
func mvccDB(t *testing.T, n int) *systemr.DB {
	t.Helper()
	db := systemr.Open(systemr.Config{})
	db.MustExec("CREATE TABLE T (A INTEGER, B INTEGER)")
	stmt := "INSERT INTO T VALUES "
	for i := 0; i < n; i++ {
		if i > 0 {
			stmt += ", "
		}
		stmt += fmt.Sprintf("(%d, %d)", i, i)
	}
	db.MustExec(stmt)
	db.MustExec("UPDATE STATISTICS")
	return db
}

// sumB returns SUM(B) over T through the given query runner.
func sumB(t *testing.T, q func(string) (*systemr.Result, error)) int64 {
	t.Helper()
	res, err := q("SELECT SUM(B) FROM T")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Rows[0][0].(int64)
	if !ok {
		t.Fatalf("SUM(B) = %v (%T), want int64", res.Rows[0][0], res.Rows[0][0])
	}
	return v
}

// TestCursorSnapshotAcrossCommittedUpdate opens a cursor, lets a concurrent
// statement UPDATE every row and commit, and checks the cursor still streams
// the versions that were current when it opened — then that a fresh
// statement sees the committed update.
func TestCursorSnapshotAcrossCommittedUpdate(t *testing.T) {
	const n = 20
	db := mvccDB(t, n)
	stmt, err := db.Prepare("SELECT B FROM T")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()

	// Read a few rows, then commit an update under the cursor. Snapshot
	// readers hold no table lock, so the writer does not block.
	for i := 0; i < 3; i++ {
		if _, ok, err := rows.Next(); err != nil || !ok {
			t.Fatalf("row %d before update: ok=%v err=%v", i, ok, err)
		}
	}
	db.MustExec("UPDATE T SET B = B + 1000")

	// Drain: every B must still be from the pre-update version set.
	got := 3
	for {
		row, ok, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if b := row[0].(int64); b >= 1000 {
			t.Fatalf("cursor leaked a post-snapshot version: B = %d", b)
		}
		got++
	}
	if got != n {
		t.Fatalf("cursor streamed %d rows, want %d", got, n)
	}

	// A fresh statement snapshot sees the committed update.
	want := int64(n*(n-1)/2 + n*1000)
	if s := sumB(t, db.Query); s != want {
		t.Fatalf("post-update SUM(B) = %d, want %d", s, want)
	}
}

// TestRepeatableReadsInTxn checks an explicit transaction reads under its
// BEGIN-time snapshot for its whole life: rows committed by other statements
// mid-transaction stay invisible until it finishes.
func TestRepeatableReadsInTxn(t *testing.T) {
	const n = 10
	db := mvccDB(t, n)
	base := int64(n * (n - 1) / 2)

	x := db.Begin()
	defer x.Rollback()
	if s := sumB(t, x.Query); s != base {
		t.Fatalf("first read SUM(B) = %d, want %d", s, base)
	}

	// Autocommitted writes land while x is open (snapshot readers take no
	// table locks, so neither side blocks the other).
	db.MustExec("INSERT INTO T VALUES (100, 100)")
	db.MustExec("UPDATE T SET B = B + 1000 WHERE A = 0")

	if s := sumB(t, x.Query); s != base {
		t.Fatalf("repeatable read violated: SUM(B) = %d, want %d", s, base)
	}
	// Its own writes ARE visible to it (read-your-writes within the txn).
	if _, err := x.Exec("INSERT INTO T VALUES (200, 200)"); err != nil {
		t.Fatal(err)
	}
	if s := sumB(t, x.Query); s != base+200 {
		t.Fatalf("own write invisible: SUM(B) = %d, want %d", s, base+200)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}

	// After commit a fresh snapshot sees everything.
	if s := sumB(t, db.Query); s != base+100+1000+200 {
		t.Fatalf("post-commit SUM(B) = %d, want %d", s, base+100+1000+200)
	}
}

// TestWriteConflictFirstUpdaterWins: two transactions snapshot the same row;
// the first to update it commits, and the second's update fails with
// ErrWriteConflict, aborting its transaction — which is then retryable.
func TestWriteConflictFirstUpdaterWins(t *testing.T) {
	db := mvccDB(t, 5)

	x1 := db.Begin()
	x2 := db.Begin() // snapshots the row before x1 touches it
	if _, err := x1.Exec("UPDATE T SET B = 100 WHERE A = 2"); err != nil {
		t.Fatal(err)
	}
	if err := x1.Commit(); err != nil {
		t.Fatal(err)
	}

	_, err := x2.Exec("UPDATE T SET B = 200 WHERE A = 2")
	if !errors.Is(err, systemr.ErrWriteConflict) {
		t.Fatalf("second updater got %v, want ErrWriteConflict", err)
	}
	// The conflict aborted the whole transaction; statements fail until the
	// session acknowledges with Rollback.
	if _, err := x2.Query("SELECT A FROM T"); !errors.Is(err, systemr.ErrTxnAborted) {
		t.Fatalf("statement after conflict got %v, want ErrTxnAborted", err)
	}
	if err := x2.Commit(); !errors.Is(err, systemr.ErrTxnAborted) {
		t.Fatalf("commit after conflict got %v, want ErrTxnAborted", err)
	}
	if err := x2.Rollback(); err != nil {
		t.Fatal(err)
	}

	// Retry from Begin succeeds: the fresh snapshot includes x1's version.
	x3 := db.Begin()
	if _, err := x3.Exec("UPDATE T SET B = 200 WHERE A = 2"); err != nil {
		t.Fatal(err)
	}
	if err := x3.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT B FROM T WHERE A = 2")
	if err != nil {
		t.Fatal(err)
	}
	if b := res.Rows[0][0].(int64); b != 200 {
		t.Fatalf("B = %d after retry, want 200", b)
	}
}

// TestVacuumRespectsOpenSnapshots: dead versions stay in place while a
// cursor's snapshot can still read them, and are physically reclaimed —
// exactly once — after the cursor closes.
func TestVacuumRespectsOpenSnapshots(t *testing.T) {
	const n = 10
	db := mvccDB(t, n)
	stmt, err := db.Prepare("SELECT B FROM T")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Open() // pins the vacuum horizon
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("UPDATE T SET B = B + 1000") // n dead versions
	db.MustExec("DELETE FROM T WHERE A = 0") // one more

	if got := db.Vacuum(); got != 0 {
		t.Fatalf("vacuum reclaimed %d versions under an open snapshot, want 0", got)
	}
	// The cursor still reads its version set after the (no-op) vacuum.
	seen := 0
	for {
		row, ok, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if b := row[0].(int64); b >= 1000 {
			t.Fatalf("cursor leaked a post-snapshot version: B = %d", b)
		}
		seen++
	}
	if seen != n {
		t.Fatalf("cursor streamed %d rows, want %d", seen, n)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	// Horizon released: the n updated-over versions and the deleted row's
	// final version are all reclaimable now.
	if got, want := db.Vacuum(), n+1; got != want {
		t.Fatalf("vacuum reclaimed %d versions, want %d", got, want)
	}
	if got := db.Vacuum(); got != 0 {
		t.Fatalf("second vacuum reclaimed %d versions, want 0", got)
	}
	// Live data is intact.
	want := int64((n-1)*n/2 - 0 + (n-1)*1000)
	if s := sumB(t, db.Query); s != want {
		t.Fatalf("post-vacuum SUM(B) = %d, want %d", s, want)
	}
}

// TestAutoVacuumTriggers: with VacuumEvery=1 every committed write runs a
// vacuum pass, so dead versions never accumulate and an explicit Vacuum
// finds nothing left.
func TestAutoVacuumTriggers(t *testing.T) {
	db := systemr.Open(systemr.Config{VacuumEvery: 1})
	db.MustExec("CREATE TABLE T (A INTEGER, B INTEGER)")
	db.MustExec("INSERT INTO T VALUES (1, 1), (2, 2), (3, 3)")
	db.MustExec("UPDATE T SET B = B + 10") // dead versions; commit triggers vacuum
	db.MustExec("DELETE FROM T WHERE A = 1")

	m := sampleMap(db)
	if got := m["systemr_vacuum_runs_total"].Value; got < 2 {
		t.Fatalf("vacuum_runs_total = %g, want >= 2", got)
	}
	if got := m["systemr_vacuum_reclaimed_total"].Value; got < 3 {
		t.Fatalf("vacuum_reclaimed_total = %g, want >= 3", got)
	}
	if got := db.Vacuum(); got != 0 {
		t.Fatalf("explicit vacuum after auto-vacuum reclaimed %d, want 0", got)
	}
	if s := sumB(t, db.Query); s != 12+13 {
		t.Fatalf("SUM(B) = %d, want 25", s)
	}
}

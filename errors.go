package systemr

// Typed errors of the statement execution governor. A statement aborted by
// cancellation, deadline, or resource budget returns a *StatementError
// wrapping one of the sentinels below, so callers dispatch with errors.Is
// and recover the partial execution cost with errors.As.

import (
	"errors"
	"fmt"

	"systemr/internal/governor"
	"systemr/internal/lock"
	"systemr/internal/storage"
	"systemr/internal/txn"
)

var (
	// ErrCanceled reports that the statement's context was canceled
	// (QueryContext/ExecContext, or Ctrl-C in the rsql shell).
	ErrCanceled = governor.ErrCanceled
	// ErrBudgetExceeded reports that the statement exhausted a resource
	// budget: Config.MaxRowsScanned, Config.MaxPageFetches, or its deadline
	// (Config.StatementTimeout or a context deadline).
	ErrBudgetExceeded = governor.ErrBudgetExceeded
	// ErrInjectedFault marks a statement failed by an installed fault hook:
	// a storage.FaultInjector on the fetch side, or SetMutationFault on the
	// write side (testing).
	ErrInjectedFault = storage.ErrInjectedFault
	// ErrDeadlock reports that the statement's transaction was chosen as the
	// victim of a lock-wait cycle and rolled back. The error is retryable:
	// rerun the transaction from BEGIN.
	ErrDeadlock = lock.ErrDeadlock
	// ErrLockTimeout reports that a lock wait exceeded Config.LockTimeout;
	// like a deadlock, the waiting transaction is rolled back.
	ErrLockTimeout = lock.ErrLockTimeout
	// ErrTxnAborted reports a statement issued on a transaction the engine
	// already rolled back (deadlock victim, lock timeout, or write
	// conflict). The session must acknowledge with ROLLBACK (or
	// Txn.Rollback) and start over.
	ErrTxnAborted = errors.New("systemr: transaction aborted by the engine")
	// ErrWriteConflict reports that the statement tried to update or delete
	// a row that a concurrent transaction updated or deleted first
	// (first-updater-wins under snapshot reads). The engine rolled the whole
	// transaction back; like ErrDeadlock, it is retryable — rerun the
	// transaction from BEGIN.
	ErrWriteConflict = txn.ErrWriteConflict
)

// StatementError is returned when the governor aborts a statement. Stats
// holds the partial measured cost up to the abort point (also available via
// LastStats).
type StatementError struct {
	Err   error
	Stats ExecStats
}

// Error reports the underlying governor error.
func (e *StatementError) Error() string { return "systemr: " + e.Err.Error() }

// Unwrap exposes the governor error chain (ErrCanceled / ErrBudgetExceeded
// and the context error) to errors.Is.
func (e *StatementError) Unwrap() error { return e.Err }

// PanicError reports an internal executor panic converted to an error at the
// statement boundary. The statement's locks and scans are released; the
// database remains usable. Stack holds the goroutine stack at recovery, for
// bug reports.
type PanicError struct {
	Value any
	Stack []byte
}

// Error reports the recovered panic value.
func (e *PanicError) Error() string { return fmt.Sprintf("systemr: internal panic: %v", e.Value) }

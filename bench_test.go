package systemr_test

// Benchmark harness: one benchmark per table/figure of the paper plus its
// conclusion-section claims (see DESIGN.md's experiment index; the
// cmd/experiments driver prints the same quantities as tables).
//
// Benchmarks report the paper's cost terms as custom metrics: pages/op
// (page fetches + temporary-list writes) and rsi/op (tuples across the RSS
// interface), alongside Go's ns/op and allocations.

import (
	"fmt"
	"testing"

	"systemr"
	"systemr/internal/core"
	"systemr/internal/exec"
	"systemr/internal/sem"
	"systemr/internal/sql"
	"systemr/internal/workload"
)

// runCold executes query once on a cold buffer and accumulates cost metrics.
func runCold(b *testing.B, db *systemr.DB, query string, pages, rsi *int64) {
	b.Helper()
	db.Pool().Flush()
	if _, err := db.Query(query); err != nil {
		b.Fatal(err)
	}
	st := db.LastStats()
	*pages += st.PageFetches + st.PagesWritten
	*rsi += st.RSICalls
}

func reportCost(b *testing.B, pages, rsi int64) {
	b.Helper()
	b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
	b.ReportMetric(float64(rsi)/float64(b.N), "rsi/op")
}

// BenchmarkTable1Selectivity times the optimizer on a predicate-heavy
// single-relation query: catalog lookup + Table 1 selectivity assignment +
// Table 2 path costing dominate.
func BenchmarkTable1Selectivity(b *testing.B) {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 2000, Seed: 1})
	query := `SELECT NAME FROM EMP WHERE DNO = 5 AND SAL BETWEEN 20000 AND 30000
	          AND JOB IN (1, 2, 3) AND (MANAGER = 7 OR MANAGER = 9) AND NOT EMPNO = 0`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.PlanSelect(query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2AccessPaths executes each access-path situation of Table 2
// cold and reports measured pages and RSI calls per operation.
func BenchmarkTable2AccessPaths(b *testing.B) {
	db := workload.NewEmpDB(workload.EmpConfig{
		Emps: 8000, Depts: 100, Jobs: 25, Seed: 13, ClusterEmpByDno: true,
	})
	situations := []struct{ name, query string }{
		{"unique_index_eq", "SELECT NAME FROM EMP WHERE EMPNO = 4321"},
		{"clustered_matching", "SELECT NAME FROM EMP WHERE DNO = 42"},
		{"nonclustered_matching", "SELECT NAME FROM EMP WHERE JOB = 7"},
		{"clustered_full_ordered", "SELECT NAME FROM EMP ORDER BY DNO"},
		{"nonclustered_full_ordered", "SELECT NAME FROM EMP ORDER BY JOB"},
		{"segment_scan", "SELECT NAME FROM EMP WHERE MANAGER = -1"},
		{"clustered_range", "SELECT NAME FROM EMP WHERE DNO BETWEEN 10 AND 19"},
	}
	for _, s := range situations {
		b.Run(s.name, func(b *testing.B) {
			var pages, rsi int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCold(b, db, s.query, &pages, &rsi)
			}
			reportCost(b, pages, rsi)
		})
	}
}

// BenchmarkFigure1ExampleJoin runs the paper's example join with full access
// path selection and with the naive baseline.
func BenchmarkFigure1ExampleJoin(b *testing.B) {
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"optimized", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			db := workload.NewEmpDB(workload.EmpConfig{
				Emps: 1500, Depts: 40, Jobs: 8, Seed: 7, Naive: mode.naive,
			})
			var pages, rsi int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCold(b, db, workload.Figure1Query, &pages, &rsi)
			}
			reportCost(b, pages, rsi)
		})
	}
}

// BenchmarkFigures2to6SearchTree times pure plan enumeration for the example
// join (the work Figures 2-6 illustrate), with the search-tree recorder on.
func BenchmarkFigures2to6SearchTree(b *testing.B) {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 1500, Depts: 40, Jobs: 8, Seed: 7})
	stmt, err := sql.Parse(workload.Figure1Query)
	if err != nil {
		b.Fatal(err)
	}
	blk, err := sem.Analyze(stmt.(*sql.SelectStmt), db.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := db.OptimizerConfig()
		cfg.Trace = &core.Trace{}
		if _, err := core.New(db.Catalog(), cfg).Optimize(blk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanQuality executes the Figure 1 query under each plan variant
// (E8): compare the chosen plan's measured cost against the alternatives via
// the pages/op and rsi/op metrics.
func BenchmarkPlanQuality(b *testing.B) {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 3000, Depts: 60, Jobs: 12, Seed: 19})
	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"chosen", func(*core.Config) {}},
		{"nlonly", func(c *core.Config) { c.NestedLoopsOnly = true }},
		{"mergeonly", func(c *core.Config) { c.MergeOnly = true }},
		{"nosargs", func(c *core.Config) { c.DisableSargs = true }},
		{"noorders", func(c *core.Config) { c.DisableInterestingOrders = true }},
	}
	stmt, err := sql.Parse(workload.Figure1Query)
	if err != nil {
		b.Fatal(err)
	}
	blk, err := sem.Analyze(stmt.(*sql.SelectStmt), db.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := db.OptimizerConfig()
			v.mut(&cfg)
			q, err := core.New(db.Catalog(), cfg).Optimize(blk)
			if err != nil {
				b.Fatal(err)
			}
			var pages, rsi int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.Pool().Flush()
				_, st, err := exec.RunQuery(db.Runtime(), q)
				if err != nil {
					b.Fatal(err)
				}
				pages += st.IO.PageFetches + st.IO.PagesWritten
				rsi += st.IO.RSICalls
			}
			reportCost(b, pages, rsi)
		})
	}
}

// BenchmarkOptimizerScaling times optimization for chain joins of 2..8
// relations, with and without the join-order heuristic (E9).
func BenchmarkOptimizerScaling(b *testing.B) {
	const maxN = 8
	db := systemr.Open(systemr.Config{})
	for t := 1; t <= maxN; t++ {
		db.MustExec(fmt.Sprintf("CREATE TABLE T%d (K INTEGER, V INTEGER)", t))
		for i := 0; i < 100; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO T%d VALUES (%d, %d)", t, i%25, i))
		}
		db.MustExec(fmt.Sprintf("CREATE INDEX T%d_K ON T%d (K)", t, t))
	}
	db.MustExec("UPDATE STATISTICS")

	for n := 2; n <= maxN; n++ {
		query := chainQueryBench(n)
		for _, h := range []struct {
			name    string
			disable bool
		}{{"heuristic", false}, {"exhaustive", true}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, h.name), func(b *testing.B) {
				stmt, err := sql.Parse(query)
				if err != nil {
					b.Fatal(err)
				}
				blk, err := sem.Analyze(stmt.(*sql.SelectStmt), db.Catalog())
				if err != nil {
					b.Fatal(err)
				}
				cfg := db.OptimizerConfig()
				cfg.DisableJoinHeuristic = h.disable
				b.ResetTimer()
				var stats core.SearchStats
				for i := 0; i < b.N; i++ {
					o := core.New(db.Catalog(), cfg)
					if _, err := o.Optimize(blk); err != nil {
						b.Fatal(err)
					}
					stats = o.Stats()
				}
				b.ReportMetric(float64(stats.CandidatesConsidered), "candidates")
				b.ReportMetric(float64(stats.SolutionsStored), "solutions")
			})
		}
	}
}

func chainQueryBench(n int) string {
	from := "T1"
	preds := ""
	for t := 2; t <= n; t++ {
		from += fmt.Sprintf(", T%d", t)
		if preds != "" {
			preds += " AND "
		}
		preds += fmt.Sprintf("T%d.K = T%d.K", t-1, t)
	}
	q := "SELECT T1.V FROM " + from
	if preds != "" {
		q += " WHERE " + preds
	}
	return q
}

// BenchmarkJoinMethods measures nested loops vs merging scans across join
// sizes (E10, the Blasgen-Eswaran comparison).
func BenchmarkJoinMethods(b *testing.B) {
	for _, size := range []struct{ outer, inner int }{{50, 1000}, {1000, 4000}} {
		db := systemr.Open(systemr.Config{BufferPages: 32})
		db.MustExec("CREATE TABLE A (K INTEGER, V INTEGER)")
		db.MustExec("CREATE TABLE B (K INTEGER, W INTEGER)")
		for i := 0; i < size.outer; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO A VALUES (%d, %d)", i%50, i))
		}
		for i := 0; i < size.inner; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO B VALUES (%d, %d)", i%50, i))
		}
		db.MustExec("CREATE INDEX A_K ON A (K)")
		db.MustExec("CREATE INDEX B_K ON B (K)")
		db.MustExec("UPDATE STATISTICS")
		query := "SELECT A.V FROM A, B WHERE A.K = B.K"
		stmt, _ := sql.Parse(query)
		blk, err := sem.Analyze(stmt.(*sql.SelectStmt), db.Catalog())
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range []struct {
			name string
			mut  func(*core.Config)
		}{
			{"nestedloops", func(c *core.Config) { c.NestedLoopsOnly = true }},
			{"mergescan", func(c *core.Config) { c.MergeOnly = true }},
			{"optimizer_choice", func(*core.Config) {}},
		} {
			b.Run(fmt.Sprintf("%dx%d/%s", size.outer, size.inner, m.name), func(b *testing.B) {
				cfg := db.OptimizerConfig()
				m.mut(&cfg)
				q, err := core.New(db.Catalog(), cfg).Optimize(blk)
				if err != nil {
					b.Fatal(err)
				}
				var pages, rsi int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					db.Pool().Flush()
					_, st, err := exec.RunQuery(db.Runtime(), q)
					if err != nil {
						b.Fatal(err)
					}
					pages += st.IO.PageFetches + st.IO.PagesWritten
					rsi += st.IO.RSICalls
				}
				reportCost(b, pages, rsi)
			})
		}
	}
}

// BenchmarkClustering compares the same range scan on clustered vs
// non-clustered layouts (E11).
func BenchmarkClustering(b *testing.B) {
	for _, c := range []struct {
		name      string
		clustered bool
	}{{"clustered", true}, {"nonclustered", false}} {
		b.Run(c.name, func(b *testing.B) {
			db := workload.NewEmpDB(workload.EmpConfig{
				Emps: 8000, Depts: 100, Jobs: 20, Seed: 23, ClusterEmpByDno: c.clustered,
			})
			var pages, rsi int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCold(b, db, "SELECT NAME FROM EMP WHERE DNO BETWEEN 40 AND 49", &pages, &rsi)
			}
			reportCost(b, pages, rsi)
		})
	}
}

// BenchmarkCorrelatedSubquery compares correlated re-evaluation with the
// outer relation ordered vs unordered on the referenced column (E12).
func BenchmarkCorrelatedSubquery(b *testing.B) {
	query := "SELECT NAME FROM EMP X WHERE SAL > (SELECT AVG(SAL) FROM EMP WHERE DNO = X.DNO)"
	for _, c := range []struct {
		name    string
		ordered bool
	}{{"ordered_outer", true}, {"random_outer", false}} {
		b.Run(c.name, func(b *testing.B) {
			db := workload.NewEmpDB(workload.EmpConfig{
				Emps: 1000, Depts: 50, Jobs: 10, Seed: 31, ClusterEmpByDno: c.ordered,
			})
			var pages, rsi int64
			var evals int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCold(b, db, query, &pages, &rsi)
				evals += int64(db.LastStats().SubqueryEvals)
			}
			reportCost(b, pages, rsi)
			b.ReportMetric(float64(evals)/float64(b.N), "subq-evals/op")
		})
	}
}

// BenchmarkSargFiltering measures the RSI savings of search arguments (the
// Section 3 motivation for SARGs).
func BenchmarkSargFiltering(b *testing.B) {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 8000, Depts: 100, Jobs: 20, Seed: 29})
	query := "SELECT NAME FROM EMP WHERE MANAGER = 17"
	stmt, _ := sql.Parse(query)
	blk, err := sem.Analyze(stmt.(*sql.SelectStmt), db.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name    string
		disable bool
	}{{"sargs", false}, {"nosargs", true}} {
		b.Run(c.name, func(b *testing.B) {
			cfg := db.OptimizerConfig()
			cfg.DisableSargs = c.disable
			q, err := core.New(db.Catalog(), cfg).Optimize(blk)
			if err != nil {
				b.Fatal(err)
			}
			var pages, rsi int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.Pool().Flush()
				_, st, err := exec.RunQuery(db.Runtime(), q)
				if err != nil {
					b.Fatal(err)
				}
				pages += st.IO.PageFetches + st.IO.PagesWritten
				rsi += st.IO.RSICalls
			}
			reportCost(b, pages, rsi)
		})
	}
}

// BenchmarkInterestingOrders measures the sort avoided when an index
// supplies the required order (the paper's interesting-order bookkeeping).
func BenchmarkInterestingOrders(b *testing.B) {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 4000, Depts: 80, Seed: 37, ClusterEmpByDno: true})
	query := "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO"
	stmt, _ := sql.Parse(query)
	blk, err := sem.Analyze(stmt.(*sql.SelectStmt), db.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name    string
		disable bool
	}{{"index_order", false}, {"forced_sort", true}} {
		b.Run(c.name, func(b *testing.B) {
			cfg := db.OptimizerConfig()
			cfg.DisableInterestingOrders = c.disable
			q, err := core.New(db.Catalog(), cfg).Optimize(blk)
			if err != nil {
				b.Fatal(err)
			}
			var pages, rsi int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.Pool().Flush()
				_, st, err := exec.RunQuery(db.Runtime(), q)
				if err != nil {
					b.Fatal(err)
				}
				pages += st.IO.PageFetches + st.IO.PagesWritten
				rsi += st.IO.RSICalls
			}
			reportCost(b, pages, rsi)
		})
	}
}

// BenchmarkPrepareVsAdhoc measures the conclusion's amortization claim:
// compiled statements skip parsing and optimization on every run. The ad hoc
// side runs with the plan cache disabled so it still pays full compilation
// per statement (the cached ad hoc path is measured in plancache_bench_test.go).
func BenchmarkPrepareVsAdhoc(b *testing.B) {
	db := workload.NewEmpDB(workload.EmpConfig{
		Emps: 2000, Depts: 50, Jobs: 10, Seed: 43,
		Engine: systemr.Config{PlanCacheSize: -1},
	})
	query := "SELECT NAME FROM EMP WHERE DNO = 7 AND SAL > 20000 ORDER BY NAME"
	b.Run("adhoc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		stmt, err := db.Prepare(query)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStatisticsValue measures the Figure 1 join planned with fresh
// statistics vs the no-statistics defaults (E15).
func BenchmarkStatisticsValue(b *testing.B) {
	for _, c := range []struct {
		name    string
		nostats bool
	}{{"with_statistics", false}, {"defaults", true}} {
		b.Run(c.name, func(b *testing.B) {
			db := workload.NewEmpDB(workload.EmpConfig{
				Emps: 8000, Depts: 100, Jobs: 20, Seed: 53, NoStatistics: c.nostats,
			})
			var pages, rsi int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCold(b, db, workload.Figure1Query, &pages, &rsi)
			}
			reportCost(b, pages, rsi)
		})
	}
}

// BenchmarkDMLAccessPaths: UPDATE target location through the chosen access
// path ("retrieval for data manipulation is treated similarly"): a
// unique-key UPDATE touches a handful of pages regardless of table size.
func BenchmarkDMLAccessPaths(b *testing.B) {
	db := workload.NewEmpDB(workload.EmpConfig{
		Emps: 8000, Depts: 100, Jobs: 20, Seed: 41, ClusterEmpByDno: true,
	})
	var pages int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Pool().Flush()
		db.Pool().Stats().Reset()
		if _, err := db.Exec("UPDATE EMP SET SAL = SAL + 1 WHERE EMPNO = 4321"); err != nil {
			b.Fatal(err)
		}
		pages += db.Pool().Stats().Snapshot().PageFetches
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
}

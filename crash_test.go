package systemr_test

// Crash-consistency sweep: SetMutationFault fails the statement at every
// possible mutation ordinal in turn — a deterministic "crash" injected
// mid-UPDATE or mid-DELETE — and after each injected failure the database
// must be byte-identical to its pre-statement dump, with no leaked locks or
// scans, and with the indexes still consistent with the heap. The mutation-
// side analog of the storage.FaultInjector fetch-side tests in
// govern_test.go.

import (
	"errors"
	"fmt"
	"testing"

	"systemr"
)

// failNth fails the nth logged mutation (1-based) with ErrInjectedFault.
func failNth(n int64) func(int64) error {
	return func(k int64) error {
		if k == n {
			return fmt.Errorf("%w: mutation %d", systemr.ErrInjectedFault, k)
		}
		return nil
	}
}

// sweepStatement runs stmt against a fresh db from build() with a fault
// injected at every mutation ordinal 1..N, asserting exact rollback each
// time, then verifies the clean run (ordinal beyond N) applies fully.
// Returns how many mutation ordinals the statement has.
func sweepStatement(t *testing.T, build func() *systemr.DB, stmt string) int64 {
	t.Helper()
	for n := int64(1); ; n++ {
		db := build()
		before := dumpSQL(t, db)
		db.SetMutationFault(failNth(n))
		_, err := db.Exec(stmt)
		db.SetMutationFault(nil)
		if err == nil {
			// The statement has fewer than n mutations: the clean run is the
			// sweep's exit — verify it actually changed the database.
			if dumpSQL(t, db) == before {
				t.Fatalf("%s: clean run changed nothing", stmt)
			}
			assertClean(t, db)
			return n - 1
		}
		if !errors.Is(err, systemr.ErrInjectedFault) {
			t.Fatalf("%s at ordinal %d: %v, want ErrInjectedFault", stmt, n, err)
		}
		assertClean(t, db)
		if after := dumpSQL(t, db); after != before {
			t.Fatalf("%s: fault at ordinal %d leaked state:\n--- before ---\n%s--- after ---\n%s",
				stmt, n, before, after)
		}
		// Index-vs-heap consistency: the indexed count must agree with the
		// unindexed one after the rollback.
		viaIndex := count(t, db, "SELECT COUNT(*) FROM T WHERE K >= 0")
		viaScan := count(t, db, "SELECT COUNT(*) FROM T WHERE V >= 0")
		if viaIndex != viaScan {
			t.Fatalf("%s at ordinal %d: index count %d != scan count %d",
				stmt, n, viaIndex, viaScan)
		}
	}
}

func TestCrashConsistencySweep(t *testing.T) {
	build := func() *systemr.DB { return newTxnDB(t) }
	// Multi-row UPDATE: 2 mutations per affected row (delete + insert).
	if got := sweepStatement(t, build, "UPDATE T SET V = V + 1 WHERE K <= 4"); got != 8 {
		t.Fatalf("UPDATE mutation count = %d, want 8", got)
	}
	// Multi-row DELETE: 1 mutation per affected row.
	if got := sweepStatement(t, build, "DELETE FROM T WHERE K >= 2"); got != 4 {
		t.Fatalf("DELETE mutation count = %d, want 4", got)
	}
	// Multi-row INSERT: 1 mutation per row.
	if got := sweepStatement(t, build, "INSERT INTO T VALUES (6, 60), (7, 70), (8, 80)"); got != 3 {
		t.Fatalf("INSERT mutation count = %d, want 3", got)
	}
}

// TestCrashSweepInsideTxn drives the same sweep through an explicit
// transaction: the faulted statement rolls back alone, the surrounding
// transaction stays usable, and after ROLLBACK the database is byte-exact.
func TestCrashSweepInsideTxn(t *testing.T) {
	for n := int64(1); ; n++ {
		db := newTxnDB(t)
		before := dumpSQL(t, db)
		conn := db.Conn()
		if _, err := conn.Exec("BEGIN"); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Exec("INSERT INTO T VALUES (6, 60)"); err != nil {
			t.Fatal(err)
		}
		db.SetMutationFault(failNth(n))
		// Ordinals continue from the INSERT above (1 mutation): the UPDATE's
		// own mutations are ordinals 2..9 of this transaction.
		_, err := conn.Exec("UPDATE T SET V = V * 10 WHERE K <= 4")
		db.SetMutationFault(nil)
		if n == 1 {
			// The transaction's first mutation (the INSERT) ran before the
			// hook was installed, so ordinal 1 can no longer fire and the
			// UPDATE must succeed.
			if err != nil {
				t.Fatalf("ordinal 1 (already consumed) still fired: %v", err)
			}
			if err := conn.Close(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err == nil {
			// Past the statement's last mutation: commit and stop sweeping.
			if _, cerr := conn.Exec("COMMIT"); cerr != nil {
				t.Fatal(cerr)
			}
			if got := count(t, db, "SELECT COUNT(*) FROM T WHERE V = 100"); got != 1 {
				t.Fatal("clean run's update missing after commit")
			}
			assertClean(t, db)
			return
		}
		if !errors.Is(err, systemr.ErrInjectedFault) {
			t.Fatalf("ordinal %d: %v, want ErrInjectedFault", n, err)
		}
		// The transaction survives its statement's rollback.
		if got := count(t, conn, "SELECT COUNT(*) FROM T WHERE K = 6"); got != 1 {
			t.Fatal("statement rollback took the transaction's earlier insert with it")
		}
		if got := count(t, conn, "SELECT COUNT(*) FROM T WHERE V >= 100"); got != 0 {
			t.Fatalf("ordinal %d: faulted UPDATE leaked rows inside the txn", n)
		}
		if _, err := conn.Exec("ROLLBACK"); err != nil {
			t.Fatal(err)
		}
		assertClean(t, db)
		if after := dumpSQL(t, db); after != before {
			t.Fatalf("ordinal %d: rollback after fault leaked state:\n%s", n, after)
		}
	}
}

// TestPanicInMutationHookRollsBack converts the fault hook into a panic —
// the executor's panic containment plus undo must behave exactly like an
// error return: *PanicError out, byte-exact state, no leaks.
func TestPanicInMutationHookRollsBack(t *testing.T) {
	db := newTxnDB(t)
	before := dumpSQL(t, db)
	db.SetMutationFault(func(k int64) error {
		if k == 3 {
			panic("injected panic at mutation 3")
		}
		return nil
	})
	_, err := db.Exec("UPDATE T SET V = V + 1 WHERE K <= 4")
	db.SetMutationFault(nil)
	var pe *systemr.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	assertClean(t, db)
	if after := dumpSQL(t, db); after != before {
		t.Fatalf("panic mid-UPDATE leaked state:\n%s", after)
	}
	// The database stays usable.
	if _, err := db.Exec("UPDATE T SET V = V + 1 WHERE K <= 4"); err != nil {
		t.Fatalf("statement after contained panic: %v", err)
	}
}

package systemr_test

// Deadlock detection end to end: two transactions locking the same tables in
// opposite order must both terminate — exactly one as an ErrDeadlock victim,
// rolled back completely — and the victim's retry must succeed. Plus the
// lock-wait timeout fallback for stalls the wait-for graph cannot classify.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"systemr"
)

func TestDeadlockOneVictimAndRetry(t *testing.T) {
	db := newTxnDB(t)
	before := dumpSQL(t, db)

	tx1, tx2 := db.Begin(), db.Begin()
	if _, err := tx1.Exec("UPDATE T SET V = V + 1 WHERE K = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec("UPDATE U SET V = V + 1 WHERE K = 1"); err != nil {
		t.Fatal(err)
	}
	// Cross over: tx1 wants U (held by tx2), tx2 wants T (held by tx1).
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, step := range []struct {
		tx   *systemr.Txn
		stmt string
	}{
		{tx1, "UPDATE U SET V = V + 2 WHERE K = 1"},
		{tx2, "UPDATE T SET V = V + 2 WHERE K = 1"},
	} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = step.tx.Exec(step.stmt)
		}()
	}
	wg.Wait()

	victims := 0
	var victim, survivor *systemr.Txn
	for i, tx := range []*systemr.Txn{tx1, tx2} {
		if errs[i] != nil {
			if !errors.Is(errs[i], systemr.ErrDeadlock) {
				t.Fatalf("txn %d failed with %v, want ErrDeadlock", i+1, errs[i])
			}
			victims++
			victim = tx
		} else {
			survivor = tx
		}
	}
	if victims != 1 {
		t.Fatalf("%d deadlock victims, want exactly 1", victims)
	}
	if !victim.Aborted() {
		t.Fatal("victim not marked aborted")
	}

	// The victim is dead until acknowledged: statements and Commit fail,
	// Rollback acknowledges.
	if _, err := victim.Exec("SELECT COUNT(*) FROM T"); !errors.Is(err, systemr.ErrTxnAborted) {
		t.Fatalf("statement on aborted txn: %v, want ErrTxnAborted", err)
	}
	if err := victim.Commit(); !errors.Is(err, systemr.ErrTxnAborted) {
		t.Fatalf("Commit on aborted txn: %v, want ErrTxnAborted", err)
	}
	if err := victim.Rollback(); err != nil {
		t.Fatalf("Rollback acknowledgment: %v", err)
	}

	// The survivor commits; the victim's retry now runs to completion.
	if err := survivor.Commit(); err != nil {
		t.Fatal(err)
	}
	retry := db.Begin()
	for _, s := range []string{
		"UPDATE T SET V = V + 1 WHERE K = 1",
		"UPDATE U SET V = V + 2 WHERE K = 1",
	} {
		if _, err := retry.Exec(s); err != nil {
			t.Fatalf("retry %s: %v", s, err)
		}
	}
	if err := retry.Commit(); err != nil {
		t.Fatal(err)
	}
	assertClean(t, db)

	m := sampleMap(db)
	if got := m["systemr_deadlocks_total"].Value; got != 1 {
		t.Fatalf("deadlocks_total = %g, want 1", got)
	}
	if got := m["systemr_txn_rollbacks_total"].Value; got != 1 {
		t.Fatalf("txn_rollbacks_total = %g, want 1 (the engine abort)", got)
	}

	// The final state must match one of the two serializations — the
	// survivor's whole transaction plus the retry, with the victim's first
	// statement fully undone. Survivor tx1: T=10+1, U=10+2, retry +1/+2 →
	// T=12, U=14. Survivor tx2: T=10+2, U=10+1, retry +1/+2 → T=13, U=13.
	if before == dumpSQL(t, db) {
		t.Fatal("no committed work visible")
	}
	s1 := count(t, db, "SELECT COUNT(*) FROM T WHERE K = 1 AND V = 12") +
		count(t, db, "SELECT COUNT(*) FROM U WHERE K = 1 AND V = 14")
	s2 := count(t, db, "SELECT COUNT(*) FROM T WHERE K = 1 AND V = 13") +
		count(t, db, "SELECT COUNT(*) FROM U WHERE K = 1 AND V = 13")
	if s1 != 2 && s2 != 2 {
		t.Fatalf("final state matches neither serialization (s1=%d s2=%d)", s1, s2)
	}
}

func TestLockTimeoutFallback(t *testing.T) {
	db := systemr.Open(systemr.Config{LockTimeout: 50 * time.Millisecond})
	db.MustExec("CREATE TABLE T (K INTEGER)")
	db.MustExec("INSERT INTO T VALUES (1)")

	holder := db.Begin()
	if _, err := holder.Exec("UPDATE T SET K = 2 WHERE K = 1"); err != nil {
		t.Fatal(err)
	}
	// No cycle — just a stall: the waiter must fall back to the timeout.
	start := time.Now()
	_, err := db.Exec("UPDATE T SET K = 3 WHERE K = 1")
	if !errors.Is(err, systemr.ErrLockTimeout) {
		t.Fatalf("stalled statement: %v, want ErrLockTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout took far longer than configured")
	}
	if err := holder.Rollback(); err != nil {
		t.Fatal(err)
	}
	assertClean(t, db)
	m := sampleMap(db)
	if got := m["systemr_lock_timeouts_total"].Value; got != 1 {
		t.Fatalf("lock_timeouts_total = %g, want 1", got)
	}
	// The engine is fully usable afterwards.
	if got := count(t, db, "SELECT COUNT(*) FROM T WHERE K = 1"); got != 1 {
		t.Fatal("rollback lost the original row")
	}
}

package systemr_test

import (
	"fmt"
	"strings"
	"testing"

	"systemr/internal/workload"
)

// TestDMLUsesAccessPaths: a selective DELETE must locate its targets through
// the index (few page fetches), not a full relation walk.
func TestDMLUsesAccessPaths(t *testing.T) {
	db := workload.NewEmpDB(workload.EmpConfig{
		Emps: 8000, Depts: 100, Jobs: 20, Seed: 41, ClusterEmpByDno: true,
	})
	emp, _ := db.Catalog().Table("EMP")
	tcard := emp.Stats.TCard

	db.Pool().Flush()
	db.Pool().Stats().Reset()
	res := db.MustExec("DELETE FROM EMP WHERE EMPNO = 1234")
	if res.Affected != 1 {
		t.Fatalf("affected %d", res.Affected)
	}
	fetched := db.Pool().Stats().Snapshot().PageFetches
	if fetched >= int64(tcard)/2 {
		t.Fatalf("unique-key DELETE fetched %d pages (TCARD %d): not using the index", fetched, tcard)
	}

	db.Pool().Flush()
	db.Pool().Stats().Reset()
	res = db.MustExec("UPDATE EMP SET SAL = SAL + 1 WHERE DNO = 3")
	if res.Affected == 0 {
		t.Fatal("update matched nothing")
	}
	fetched = db.Pool().Stats().Snapshot().PageFetches
	if fetched >= int64(tcard)/2 {
		t.Fatalf("clustered-range UPDATE fetched %d pages (TCARD %d)", fetched, tcard)
	}
}

// TestDMLCorrectness: DELETE/UPDATE against independently computed
// expectations, including subqueries in WHERE and SET.
func TestDMLCorrectness(t *testing.T) {
	db := newEmpDeptJobDB(t)

	// Count expected victims first.
	res, _ := db.Query("SELECT COUNT(*) FROM EMP WHERE SAL > (SELECT AVG(SAL) FROM EMP)")
	want := res.Rows[0][0].(int64)
	del := db.MustExec("DELETE FROM EMP WHERE SAL > (SELECT AVG(SAL) FROM EMP)")
	if int64(del.Affected) != want {
		t.Fatalf("deleted %d, want %d", del.Affected, want)
	}
	res, _ = db.Query("SELECT COUNT(*) FROM EMP")
	if res.Rows[0][0].(int64) != 300-want {
		t.Fatalf("remaining %v", res.Rows[0][0])
	}

	// UPDATE with subquery in SET: everyone paid the old maximum.
	res, _ = db.Query("SELECT MAX(SAL) FROM EMP")
	oldMax := res.Rows[0][0].(float64)
	res, _ = db.Query("SELECT COUNT(*) FROM EMP WHERE DNO = 9")
	inDept := res.Rows[0][0].(int64)
	up := db.MustExec("UPDATE EMP SET SAL = (SELECT MAX(SAL) FROM EMP) WHERE DNO = 9")
	if int64(up.Affected) != inDept || inDept == 0 {
		t.Fatalf("updated %d, dept has %d", up.Affected, inDept)
	}
	res, _ = db.Query("SELECT MIN(SAL), MAX(SAL) FROM EMP WHERE DNO = 9")
	if res.Rows[0][0].(float64) != oldMax || res.Rows[0][1].(float64) != oldMax {
		t.Fatalf("set-subquery results: %v (want %v)", res.Rows[0], oldMax)
	}
}

// TestDMLIndexMaintenance: after heavy churn, index scans agree with segment
// scans.
func TestDMLIndexMaintenance(t *testing.T) {
	db := newEmpDeptJobDB(t)
	for i := 0; i < 5; i++ {
		db.MustExec(fmt.Sprintf("DELETE FROM EMP WHERE DNO = %d", i*3+1))
		db.MustExec(fmt.Sprintf("UPDATE EMP SET DNO = %d WHERE DNO = %d", i*3+1, i*3+2))
		db.MustExec(fmt.Sprintf("INSERT INTO EMP VALUES ('X%02d', %d, 5, 1.0)", i, i*3+2))
	}
	db.MustExec("UPDATE STATISTICS")
	// Force both access paths and compare counts per DNO.
	for d := 1; d <= 15; d++ {
		viaIndex, err := db.Query(fmt.Sprintf("SELECT COUNT(*) FROM EMP WHERE DNO = %d", d))
		if err != nil {
			t.Fatal(err)
		}
		// MANAGER-style unindexed predicate forces residual evaluation over a
		// segment scan: DNO+0 = d is not sargable.
		viaSeg, err := db.Query(fmt.Sprintf("SELECT COUNT(*) FROM EMP WHERE DNO + 0 = %d", d))
		if err != nil {
			t.Fatal(err)
		}
		if viaIndex.Rows[0][0] != viaSeg.Rows[0][0] {
			t.Fatalf("DNO=%d: index path %v != segment path %v", d, viaIndex.Rows[0][0], viaSeg.Rows[0][0])
		}
	}
}

// TestDeleteEverything and reinsertion into reused space.
func TestDeleteEverythingAndReuse(t *testing.T) {
	db := newEmpDeptJobDB(t)
	res := db.MustExec("DELETE FROM EMP")
	if res.Affected != 300 {
		t.Fatalf("deleted %d", res.Affected)
	}
	q, _ := db.Query("SELECT COUNT(*) FROM EMP")
	if q.Rows[0][0].(int64) != 0 {
		t.Fatal("rows remain")
	}
	db.MustExec("INSERT INTO EMP VALUES ('BACK', 1, 5, 9.0)")
	q, _ = db.Query("SELECT NAME FROM EMP WHERE DNO = 1")
	if len(q.Rows) != 1 || q.Rows[0][0].(string) != "BACK" {
		t.Fatalf("reinserted row: %v", q.Rows)
	}
}

// TestHalloweenProblem: updating the very column an index-range plan scans
// must not revisit moved tuples. EMP_SAL indexes SAL; doubling salaries below
// a bound must double each exactly once even though the new values land
// ahead of the scan range.
func TestHalloweenProblem(t *testing.T) {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 1000, Depts: 20, Jobs: 5, Seed: 47})
	res, _ := db.Query("SELECT COUNT(*) FROM EMP WHERE SAL < 20000")
	below := res.Rows[0][0].(int64)
	if below == 0 {
		t.Fatal("need salaries below the bound")
	}
	res, _ = db.Query("SELECT SUM(SAL) FROM EMP")
	sumBefore := res.Rows[0][0].(float64)
	res, _ = db.Query("SELECT SUM(SAL) FROM EMP WHERE SAL < 20000")
	sumBelow := res.Rows[0][0].(float64)

	up := db.MustExec("UPDATE EMP SET SAL = SAL * 2 WHERE SAL < 20000")
	if int64(up.Affected) != below {
		t.Fatalf("updated %d, want %d", up.Affected, below)
	}
	res, _ = db.Query("SELECT SUM(SAL) FROM EMP")
	sumAfter := res.Rows[0][0].(float64)
	// Exactly one doubling: total grows by the below-bound sum, no more.
	if diff := sumAfter - sumBefore - sumBelow; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("sum drifted by %v: tuples updated more than once", diff)
	}
}

// TestUpdateUniqueViolationSurfacesError: without logging/recovery the
// statement fails partway (documented); the error must surface rather than
// corrupt silently.
func TestUpdateUniqueViolationSurfacesError(t *testing.T) {
	db := newEmpDeptJobDB(t)
	db.MustExec("CREATE TABLE U (K INTEGER)")
	db.MustExec("CREATE UNIQUE INDEX U_K ON U (K)")
	db.MustExec("INSERT INTO U VALUES (1), (2)")
	if _, err := db.Exec("UPDATE U SET K = 9"); err == nil {
		t.Fatal("setting both keys to 9 must violate the unique index")
	}
}

// TestExplainDML: EXPLAIN shows the access path a DELETE or UPDATE will use
// to locate its targets.
func TestExplainDML(t *testing.T) {
	db := newEmpDeptJobDB(t)
	res, err := db.Exec("EXPLAIN DELETE FROM EMP WHERE DNO = 7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "EMP_DNO") {
		t.Fatalf("delete plan should use the DNO index:\n%s", res.Plan)
	}
	res, err = db.Exec("EXPLAIN UPDATE EMP SET SAL = SAL + 1 WHERE NAME = 'EMP000'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "SEGSCAN") {
		t.Fatalf("update on unindexed column should segment-scan:\n%s", res.Plan)
	}
}

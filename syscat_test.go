package systemr_test

import (
	"strings"
	"testing"
)

// TestSystemCatalogs: the catalogs are ordinary relations queryable through
// SQL, refreshed by UPDATE STATISTICS, and read-only.
func TestSystemCatalogs(t *testing.T) {
	db := newEmpDeptJobDB(t)

	res, err := db.Query("SELECT TNAME, NCARD FROM SYSTABLES WHERE TNAME = 'EMP'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].(int64) != 300 {
		t.Fatalf("SYSTABLES row for EMP: %v", res.Rows)
	}

	res, err = db.Query("SELECT CNAME FROM SYSCOLUMNS WHERE TNAME = 'DEPT' ORDER BY CNAME")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].(string) != "DNAME" {
		t.Fatalf("SYSCOLUMNS for DEPT: %v", res.Rows)
	}

	res, err = db.Query("SELECT INAME, ICARD FROM SYSINDEXES WHERE TNAME = 'EMP' AND UNIQUEFLAG = 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("EMP non-unique indexes: %v", res.Rows)
	}

	// The catalogs join with themselves like any relation.
	res, err = db.Query(`SELECT SYSTABLES.TNAME, COUNT(*) FROM SYSTABLES, SYSCOLUMNS
		WHERE SYSTABLES.TNAME = SYSCOLUMNS.TNAME GROUP BY SYSTABLES.TNAME ORDER BY SYSTABLES.TNAME`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 5 { // EMP, DEPT, JOB + 3 system tables
		t.Fatalf("catalog self-join: %v", res.Rows)
	}

	// Per-column histogram statistics publish through SYSCOLSTATS (one row
	// per analyzed column) and SYSHIST (one row per bucket).
	res, err = db.Query("SELECT CNAME, NDISTINCT FROM SYSCOLSTATS WHERE TNAME = 'JOB' ORDER BY CNAME")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].(int64) != 4 || res.Rows[1][1].(int64) != 4 {
		t.Fatalf("SYSCOLSTATS for JOB (4 distinct ids and titles): %v", res.Rows)
	}
	res, err = db.Query("SELECT BUCKETNO, NROWS FROM SYSHIST WHERE TNAME = 'JOB' AND CNAME = 'TITLE' ORDER BY BUCKETNO")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("SYSHIST has no buckets for JOB.TITLE")
	}

	// Read-only: every mutation is rejected.
	for _, stmt := range []string{
		"INSERT INTO SYSTABLES VALUES ('X', 1, 1, 1.0)",
		"DELETE FROM SYSTABLES",
		"UPDATE SYSTABLES SET NCARD = 0",
		"DROP TABLE SYSTABLES",
		"CREATE INDEX SYSX ON SYSTABLES (TNAME)",
		"CREATE TABLE SYSCOLUMNS (A INTEGER)",
	} {
		if _, err := db.Exec(stmt); err == nil {
			t.Fatalf("%q must be rejected", stmt)
		} else if !strings.Contains(strings.ToUpper(err.Error()), "SYS") {
			t.Fatalf("%q: unexpected error %v", stmt, err)
		}
	}

	// Statistics refresh updates the published numbers.
	db.MustExec("DELETE FROM EMP WHERE DNO = 1")
	db.MustExec("UPDATE STATISTICS")
	res, err = db.Query("SELECT NCARD FROM SYSTABLES WHERE TNAME = 'EMP'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 290 {
		t.Fatalf("NCARD after delete+refresh: %v", res.Rows)
	}
}

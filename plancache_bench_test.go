package systemr_test

// Plan cache benchmarks: the compile-once/execute-many payoff, measured.
// Two statement shapes — a SARGable single-relation SELECT and the
// EMP/DEPT/JOB three-table join — each executed four ways: ad hoc with the
// cache disabled (cold: parse + sem + optimize every time), ad hoc through
// the warm plan cache, unprepared vs prepared. TestBenchPlancacheJSON runs
// the same comparison once and writes BENCH_plancache.json for CI trending.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"systemr"
	"systemr/internal/workload"
)

var plancacheQueries = []struct{ name, query string }{
	{"sargable_select", "SELECT NAME FROM EMP WHERE DNO = 7 AND SAL > 20000"},
	{"join3", "SELECT E.NAME, D.DNAME, J.TITLE FROM EMP E, DEPT D, JOB J " +
		"WHERE E.DNO = D.DNO AND E.JOB = J.JOB AND E.EMPNO = 1234"},
}

func plancacheDB(cacheSize int) *systemr.DB {
	return workload.NewEmpDB(workload.EmpConfig{
		Emps: 2000, Depts: 50, Jobs: 10, Seed: 43,
		Engine: systemr.Config{PlanCacheSize: cacheSize},
	})
}

// BenchmarkPlanCache compares cold compilation against warm cache hits per
// statement shape.
func BenchmarkPlanCache(b *testing.B) {
	for _, q := range plancacheQueries {
		b.Run(q.name+"/cold", func(b *testing.B) {
			db := plancacheDB(-1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q.query); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.name+"/cached", func(b *testing.B) {
			db := plancacheDB(0)
			if _, err := db.Query(q.query); err != nil { // warm the cache
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q.query); err != nil {
					b.Fatal(err)
				}
			}
			if s := db.PlanCacheStats(); s.Hits < int64(b.N) {
				b.Fatalf("cached loop was not served from cache: %+v", s)
			}
		})
		b.Run(q.name+"/prepared", func(b *testing.B) {
			db := plancacheDB(0)
			stmt, err := db.Prepare(q.query)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stmt.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchResult is one BENCH_plancache.json row.
type benchResult struct {
	Query           string  `json:"query"`
	ColdNsPerOp     float64 `json:"cold_ns_per_op"`
	CachedNsPerOp   float64 `json:"cached_ns_per_op"`
	PreparedNsPerOp float64 `json:"prepared_ns_per_op"`
	Speedup         float64 `json:"cached_speedup"`
	CacheHits       int64   `json:"cache_hits"`
	Compilations    int64   `json:"compilations"`
}

// timePerOp runs f iters times and returns mean ns/op.
func timePerOp(iters int, f func() error) (float64, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

// TestBenchPlancacheJSON measures prepared-vs-unprepared and cached-vs-cold
// execution for both statement shapes and writes BENCH_plancache.json. It
// also asserts the tentpole's acceptance criterion: a cache hit must be
// measurably faster than cold compile-and-execute.
func TestBenchPlancacheJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark measurement; skipped in -short")
	}
	const iters = 300
	var results []benchResult
	for _, q := range plancacheQueries {
		cold := plancacheDB(-1)
		coldNs, err := timePerOp(iters, func() error { _, err := cold.Query(q.query); return err })
		if err != nil {
			t.Fatal(err)
		}
		warm := plancacheDB(0)
		if _, err := warm.Query(q.query); err != nil {
			t.Fatal(err)
		}
		cachedNs, err := timePerOp(iters, func() error { _, err := warm.Query(q.query); return err })
		if err != nil {
			t.Fatal(err)
		}
		stmt, err := warm.Prepare(q.query)
		if err != nil {
			t.Fatal(err)
		}
		preparedNs, err := timePerOp(iters, func() error { _, err := stmt.Run(); return err })
		if err != nil {
			t.Fatal(err)
		}
		s := warm.PlanCacheStats()
		results = append(results, benchResult{
			Query:           q.query,
			ColdNsPerOp:     coldNs,
			CachedNsPerOp:   cachedNs,
			PreparedNsPerOp: preparedNs,
			Speedup:         coldNs / cachedNs,
			CacheHits:       s.Hits,
			Compilations:    s.Compilations,
		})
		if cachedNs >= coldNs {
			t.Errorf("%s: cache hit (%.0f ns) not faster than cold compile (%.0f ns)",
				q.name, cachedNs, coldNs)
		}
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_plancache.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_plancache.json:\n%s", data)
}

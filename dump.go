package systemr

// SQL script export: DumpSQL writes a statement script that recreates the
// database's schema, indexes, and data on a fresh instance — persistence at
// the SQL level (the storage engine itself is an in-memory simulation; see
// DESIGN.md).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"systemr/internal/compile"
	"systemr/internal/lock"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// DumpSQL writes CREATE TABLE / CREATE INDEX / INSERT / UPDATE STATISTICS
// statements reproducing the current database. System catalogs are skipped
// (they regenerate). Tables dump in name order; rows in physical order.
func (db *DB) DumpSQL(w io.Writer) error {
	tables := db.cat.Tables()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	reqs := []lock.Request{{Table: compile.CatalogLock, Mode: lock.Shared}}
	for _, t := range tables {
		reqs = append(reqs, lock.Request{Table: t.Name, Mode: lock.Shared})
	}
	held := db.locks.Acquire(reqs)
	defer held.Release()

	bw := bufio.NewWriter(w)

	for _, t := range tables {
		if t.System {
			continue
		}
		cols := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c.Name + " " + c.Type.String()
		}
		fmt.Fprintf(bw, "CREATE TABLE %s (%s);\n", t.Name, strings.Join(cols, ", "))
		// The held shared locks exclude every writer, so "no delete mark"
		// is exactly "latest committed": dead versions awaiting vacuum are
		// skipped, live versions dump in physical order.
		for _, pid := range t.Segment.Pages() {
			page := db.disk.Page(pid)
			for s := uint16(0); s < page.NumSlots(); s++ {
				rec, rel, ok := page.Record(s)
				if !ok || rel != t.ID {
					continue
				}
				h, body, err := storage.ParseVersionHeader(rec)
				if err != nil {
					return fmt.Errorf("systemr: dumping %s: %w", t.Name, err)
				}
				if h.Xmax != 0 {
					continue
				}
				row, err := storage.DecodeRow(body)
				if err != nil {
					return fmt.Errorf("systemr: dumping %s: %w", t.Name, err)
				}
				fmt.Fprintf(bw, "INSERT INTO %s VALUES (%s);\n", t.Name, sqlRow(row))
			}
		}
		for _, ix := range t.Indexes {
			kind := "INDEX"
			if ix.Clustered {
				kind = "CLUSTERED " + kind
			}
			if ix.Unique {
				kind = "UNIQUE " + kind
			}
			fmt.Fprintf(bw, "CREATE %s %s ON %s (%s);\n",
				kind, ix.Name, t.Name, strings.Join(ix.ColumnNames(), ", "))
		}
	}
	fmt.Fprintln(bw, "UPDATE STATISTICS;")
	return bw.Flush()
}

func sqlRow(row value.Row) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.SQL()
	}
	return strings.Join(parts, ", ")
}

// RunScript executes a multi-statement SQL script (statements separated by
// ';'), stopping at the first error. Line comments (--) are honored by the
// lexer. It returns the number of statements executed.
func (db *DB) RunScript(r io.Reader) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, stmt := range splitStatements(string(data)) {
		if strings.TrimSpace(stmt) == "" {
			continue
		}
		if _, err := db.Exec(stmt); err != nil {
			return n, fmt.Errorf("systemr: script statement %d: %w", n+1, err)
		}
		n++
	}
	return n, nil
}

// splitStatements splits on ';' outside string literals.
func splitStatements(script string) []string {
	var out []string
	var cur strings.Builder
	inString := false
	for i := 0; i < len(script); i++ {
		c := script[i]
		switch {
		case c == '\'':
			inString = !inString
			cur.WriteByte(c)
		case c == ';' && !inString:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if strings.TrimSpace(cur.String()) != "" {
		out = append(out, cur.String())
	}
	return out
}

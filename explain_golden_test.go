package systemr_test

import (
	"strings"
	"testing"

	"systemr"
)

// TestExplainGolden pins the full EXPLAIN text for a small deterministic
// database — a regression net over plan shape, cost arithmetic, and the
// printer. If an intentional optimizer change shifts this plan, update the
// expectation alongside the change.
func TestExplainGolden(t *testing.T) {
	db := systemr.Open(systemr.Config{BufferPages: 16})
	db.MustExec("CREATE TABLE A (K INTEGER, V INTEGER)")
	db.MustExec("CREATE TABLE B (K INTEGER, W INTEGER)")
	for i := 0; i < 40; i++ {
		db.MustExec("INSERT INTO A VALUES (" + itoa(i%8) + ", " + itoa(i) + ")")
	}
	for i := 0; i < 16; i++ {
		db.MustExec("INSERT INTO B VALUES (" + itoa(i%8) + ", " + itoa(100+i) + ")")
	}
	db.MustExec("CREATE INDEX A_K ON A (K)")
	db.MustExec("CREATE UNIQUE INDEX B_W ON B (W)")
	db.MustExec("UPDATE STATISTICS")

	got, err := db.Explain("SELECT A.V FROM A, B WHERE A.K = B.K AND B.W = 105")
	if err != nil {
		t.Fatal(err)
	}
	// B is a single-page relation, so the segment scan beats the unique
	// index probe (1 page vs 1 index page + 1 data page) — exactly what
	// Table 2 prescribes.
	want := strings.Join([]string{
		"QUERY BLOCK (main)",
		"  PROJECT A.V  {cost: pages=1.2 rsi=6.0, rows=5.0}",
		"    NLJOIN bind: $1=outer[1.0]  {cost: pages=1.2 rsi=6.0, rows=5.0}",
		"      SEGSCAN B sarg: (c1 = 105)  {cost: pages=1.0 rsi=1.0, rows=1.0}",
		"      INDEXSCAN A via A_K(K) key:[$1 .. $1] sarg: (c0 = $1)  {cost: pages=0.2 rsi=5.0, rows=5.0}",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("golden plan drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

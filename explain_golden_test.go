package systemr_test

import (
	"strings"
	"testing"

	"systemr"
)

// abDB builds the small deterministic two-table database the EXPLAIN golden
// tests pin their plans against.
func abDB(t *testing.T, cfg systemr.Config) *systemr.DB {
	t.Helper()
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 16
	}
	db := systemr.Open(cfg)
	db.MustExec("CREATE TABLE A (K INTEGER, V INTEGER)")
	db.MustExec("CREATE TABLE B (K INTEGER, W INTEGER)")
	for i := 0; i < 40; i++ {
		db.MustExec("INSERT INTO A VALUES (" + itoa(i%8) + ", " + itoa(i) + ")")
	}
	for i := 0; i < 16; i++ {
		db.MustExec("INSERT INTO B VALUES (" + itoa(i%8) + ", " + itoa(100+i) + ")")
	}
	db.MustExec("CREATE INDEX A_K ON A (K)")
	db.MustExec("CREATE UNIQUE INDEX B_W ON B (W)")
	db.MustExec("UPDATE STATISTICS")
	return db
}

// TestExplainGolden pins the full EXPLAIN text for a small deterministic
// database — a regression net over plan shape, cost arithmetic, and the
// printer. If an intentional optimizer change shifts this plan, update the
// expectation alongside the change.
func TestExplainGolden(t *testing.T) {
	db := abDB(t, systemr.Config{})
	got, err := db.Explain("SELECT A.V FROM A, B WHERE A.K = B.K AND B.W = 105")
	if err != nil {
		t.Fatal(err)
	}
	// B is a single-page relation, so the segment scan beats the unique
	// index probe (1 page vs 1 index page + 1 data page) — exactly what
	// Table 2 prescribes.
	want := strings.Join([]string{
		"QUERY BLOCK (main)",
		"  PROJECT A.V  {cost: pages=1.2 rsi=6.0, rows=5.0}",
		"    NLJOIN bind: $1=outer[1.0]  {cost: pages=1.2 rsi=6.0, rows=5.0}",
		"      SEGSCAN B sarg: (c1 = 105)  {cost: pages=1.0 rsi=1.0, rows=1.0}",
		"      INDEXSCAN A via A_K(K) key:[$1 .. $1] sarg: (c0 = $1)  {cost: pages=0.2 rsi=5.0, rows=5.0}",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("golden plan drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainGoldenMergeJoin pins the merging-scans plan shape: both inputs
// sorted into temporary lists on the join column, then merged.
func TestExplainGoldenMergeJoin(t *testing.T) {
	db := abDB(t, systemr.Config{MergeOnly: true})
	got, err := db.Explain("SELECT A.V, B.W FROM A, B WHERE A.K = B.K")
	if err != nil {
		t.Fatal(err)
	}
	// The outer side rides A_K's order for free (an interesting order); only
	// B needs sorting into a temporary list.
	want := strings.Join([]string{
		"QUERY BLOCK (main)",
		"  PROJECT A.V, B.W  {cost: pages=5.0 rsi=88.0, rows=80.0}",
		"    MERGEJOIN on outer[0.0] = inner[1.0]  {cost: pages=5.0 rsi=88.0, rows=80.0}",
		"      INDEXSCAN A via A_K(K)  {cost: pages=2.0 rsi=40.0, rows=40.0}",
		"      SORT into temp list by [1.0]  {cost: pages=3.0 rsi=48.0, rows=16.0}",
		"        SEGSCAN B  {cost: pages=1.0 rsi=16.0, rows=16.0}",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("merge-join golden plan drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainGoldenInterestingOrder pins an interesting-order plan: the
// index scan already delivers ORDER BY K, so the optimizer emits no SORT
// node (Section 4's interesting orders make the ordered path win even though
// an unordered scan is cheaper before the sort is charged).
func TestExplainGoldenInterestingOrder(t *testing.T) {
	db := abDB(t, systemr.Config{})
	got, err := db.Explain("SELECT V FROM A WHERE K >= 3 ORDER BY K")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got, "SORT") {
		t.Fatalf("expected the index scan's order to satisfy ORDER BY without a SORT node:\n%s", got)
	}
	// K >= 3 matches K ∈ {3..7}, 5 rows each: the histogram counts exactly 25
	// of A's 40 rows (linear interpolation between the index boundary keys
	// used to guess 4/7 × 40 ≈ 22.9).
	want := strings.Join([]string{
		"QUERY BLOCK (main)",
		"  PROJECT A.V  {cost: pages=1.2 rsi=25.0, rows=25.0}",
		"    INDEXSCAN A via A_K(K) key:[3 .. +inf] sarg: (c0 >= 3)  {cost: pages=1.2 rsi=25.0, rows=25.0}",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("interesting-order golden plan drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

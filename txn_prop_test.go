package systemr_test

// Differential property test: randomized transactions run concurrently
// against one database, retrying on deadlock and on first-updater-wins
// write conflicts; every committed transaction's serialization position is
// captured through a shared ORDERLOG table whose exclusive lock totally
// orders commits. Replaying the committed transactions serially on a fresh
// database in that order must produce a byte-identical SQL dump — writer
// 2PL plus snapshot write-conflict detection really did serialize, and
// rollback really did erase every aborted attempt. Concurrent snapshot
// readers ride along: every aggregate they observe must equal the state
// after some prefix of the serialization order, because a snapshot's
// committed set is always a commit-order prefix (transactions deregister
// from the XID registry inside their exclusive-lock window).

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"systemr"
)

// propTxn is one generated transaction: a deterministic statement list,
// replayable on the oracle.
type propTxn struct {
	g, i  int
	stmts []string
}

// genTxns precomputes every transaction's statements from a seeded source,
// so the concurrent run and the serial replay execute identical SQL.
func genTxns(goroutines, perG int, seed int64) [][]propTxn {
	rng := rand.New(rand.NewSource(seed))
	tables := []string{"T0", "T1", "T2"}
	all := make([][]propTxn, goroutines)
	for g := range all {
		all[g] = make([]propTxn, perG)
		for i := range all[g] {
			n := 2 + rng.Intn(2)
			var stmts []string
			// Visit tables in a random order (the deadlock fuel) with a
			// random op against each.
			perm := rng.Perm(len(tables))[:n]
			for _, ti := range perm {
				tab := tables[ti]
				key := rng.Intn(20)
				switch rng.Intn(3) {
				case 0:
					// Keys are namespaced per (g,i) so inserts never collide.
					stmts = append(stmts, fmt.Sprintf(
						"INSERT INTO %s VALUES (%d, %d)", tab, 1000+100*g+i, key))
				case 1:
					stmts = append(stmts, fmt.Sprintf(
						"UPDATE %s SET V = V + %d WHERE K = %d", tab, 1+rng.Intn(9), key))
				case 2:
					stmts = append(stmts, fmt.Sprintf(
						"DELETE FROM %s WHERE K = %d AND V < %d", tab, key, rng.Intn(50)))
				}
			}
			all[g][i] = propTxn{g: g, i: i, stmts: stmts}
		}
	}
	return all
}

func newPropDB() *systemr.DB {
	db := systemr.Open(systemr.Config{})
	for _, tab := range []string{"T0", "T1", "T2"} {
		db.MustExec("CREATE TABLE " + tab + " (K INTEGER, V INTEGER)")
		for k := 0; k < 20; k++ {
			db.MustExec(fmt.Sprintf("INSERT INTO %s VALUES (%d, %d)", tab, k, k))
		}
	}
	db.MustExec("CREATE TABLE ORDERLOG (G INTEGER, I INTEGER)")
	db.MustExec("UPDATE STATISTICS")
	return db
}

func TestConcurrentTxnsMatchSerialOracle(t *testing.T) {
	const goroutines, perG = 6, 25
	txns := genTxns(goroutines, perG, 0x5E11A)

	db := newPropDB()
	var mu sync.Mutex
	var order []propTxn

	// Snapshot readers: aggregate T0 lock-free while the writers run. Each
	// observation is asserted below against the set of serial-prefix states.
	const readers = 3
	var robs [readers][][2]int64
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Query("SELECT COUNT(*), SUM(V) FROM T0")
				if err != nil {
					t.Errorf("snapshot reader: %v", err)
					return
				}
				robs[r] = append(robs[r], aggPair(res))
				time.Sleep(2 * time.Millisecond)
			}
		}(r)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, pt := range txns[g] {
				if !runPropTxn(t, db, pt, &mu, &order) {
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	if t.Failed() {
		return
	}
	assertClean(t, db)
	if len(order) != goroutines*perG {
		t.Fatalf("%d committed transactions, want %d", len(order), goroutines*perG)
	}

	// Serial oracle: replay the committed transactions in serialization
	// order on a fresh database.
	oracle := newPropDB()
	prefixes := make(map[[2]int64]bool)
	snapState := func() {
		res, err := oracle.Query("SELECT COUNT(*), SUM(V) FROM T0")
		if err != nil {
			t.Fatalf("oracle aggregate: %v", err)
		}
		prefixes[aggPair(res)] = true
	}
	snapState() // the empty prefix: the seed state
	for _, pt := range order {
		conn := oracle.Conn()
		for _, s := range append([]string{"BEGIN"}, pt.stmts...) {
			if _, err := conn.Exec(s); err != nil {
				t.Fatalf("oracle replay (%d,%d) %s: %v", pt.g, pt.i, s, err)
			}
		}
		if _, err := conn.Exec(fmt.Sprintf(
			"INSERT INTO ORDERLOG VALUES (%d, %d)", pt.g, pt.i)); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Exec("COMMIT"); err != nil {
			t.Fatal(err)
		}
		snapState()
	}
	for r := range robs {
		for i, ob := range robs[r] {
			if !prefixes[ob] {
				t.Errorf("reader %d observation %d = (count=%d sum=%d) matches no serial prefix", r, i, ob[0], ob[1])
			}
		}
	}
	want, got := dumpSQL(t, oracle), dumpSQL(t, db)
	if want != got {
		t.Fatalf("concurrent result diverges from serial oracle:\n--- oracle ---\n%s--- concurrent ---\n%s", want, got)
	}
	m := sampleMap(db)
	nobs := 0
	for r := range robs {
		nobs += len(robs[r])
	}
	t.Logf("deadlocks: %g, write conflicts: %g, reader observations checked: %d",
		m["systemr_deadlocks_total"].Value, m["systemr_write_conflicts_total"].Value, nobs)
}

// aggPair extracts (COUNT, SUM) from a one-row aggregate result; a NULL sum
// (empty input) maps to -1.
func aggPair(res *systemr.Result) [2]int64 {
	cnt, _ := res.Rows[0][0].(int64)
	sum := int64(-1)
	if v, ok := res.Rows[0][1].(int64); ok {
		sum = v
	}
	return [2]int64{cnt, sum}
}

// runPropTxn executes one generated transaction, retrying from scratch when
// it is chosen as a deadlock victim. The final ORDERLOG insert X-locks the
// shared log table, so appending to order between that insert and COMMIT
// happens in serialization order. Reports false if the test failed.
func runPropTxn(t *testing.T, db *systemr.DB, pt propTxn, mu *sync.Mutex, order *[]propTxn) bool {
	for attempt := 0; attempt < 200; attempt++ {
		tx := db.Begin()
		aborted := false
		for j, s := range pt.stmts {
			if j > 0 {
				// Hold the locks acquired so far for a beat: single statements
				// finish in microseconds, and without this stagger the lock
				// holds of different goroutines almost never overlap enough to
				// form the cycles this test exists to exercise.
				time.Sleep(200 * time.Microsecond)
			}
			if _, err := tx.Exec(s); err != nil {
				if errors.Is(err, systemr.ErrDeadlock) || errors.Is(err, systemr.ErrTxnAborted) ||
					errors.Is(err, systemr.ErrWriteConflict) {
					aborted = true
					break
				}
				t.Errorf("txn (%d,%d) %s: %v", pt.g, pt.i, s, err)
				return false
			}
		}
		if !aborted {
			if _, err := tx.Exec(fmt.Sprintf(
				"INSERT INTO ORDERLOG VALUES (%d, %d)", pt.g, pt.i)); err != nil {
				if !errors.Is(err, systemr.ErrDeadlock) && !errors.Is(err, systemr.ErrTxnAborted) &&
					!errors.Is(err, systemr.ErrWriteConflict) {
					t.Errorf("txn (%d,%d) orderlog: %v", pt.g, pt.i, err)
					return false
				}
				aborted = true
			}
		}
		if aborted {
			if err := tx.Rollback(); err != nil {
				t.Errorf("txn (%d,%d) rollback: %v", pt.g, pt.i, err)
				return false
			}
			// Back off before retrying, growing with the attempt count and
			// skewed by goroutine id: victims that retry instantly just
			// recreate the same cycle against the same peers.
			time.Sleep(time.Duration(attempt+pt.g+1) * time.Millisecond)
			continue
		}
		// ORDERLOG's X lock is held from the insert until Commit releases
		// it: no other transaction can pass its own ORDERLOG insert in
		// between, so this append position is the serialization position.
		mu.Lock()
		*order = append(*order, pt)
		mu.Unlock()
		if err := tx.Commit(); err != nil {
			t.Errorf("txn (%d,%d) commit: %v", pt.g, pt.i, err)
			return false
		}
		return true
	}
	t.Errorf("txn (%d,%d): no commit in 200 attempts", pt.g, pt.i)
	return false
}

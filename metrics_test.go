package systemr_test

import (
	"strings"
	"testing"
	"time"

	"systemr"
	"systemr/internal/lock"
	"systemr/internal/metrics"
)

// sampleMap indexes a registry snapshot by metric name.
func sampleMap(db *systemr.DB) map[string]metrics.Sample {
	out := make(map[string]metrics.Sample)
	for _, s := range db.Metrics().Snapshot() {
		out[s.Name] = s
	}
	return out
}

// TestMetricsStatementCounters runs a small session and checks the
// event-driven instruments: statement count, error count, latency histogram
// observations, compile timings, and the measured-cost counters fed by the
// per-statement accumulators.
func TestMetricsStatementCounters(t *testing.T) {
	db := systemr.Open(systemr.Config{})
	db.MustExec("CREATE TABLE T (A INTEGER)")
	db.MustExec("INSERT INTO T VALUES (1), (2), (3)")
	db.MustExec("UPDATE STATISTICS")
	db.MustExec("SELECT A FROM T")
	if _, err := db.Exec("SELECT BOGUS FROM NOWHERE"); err == nil {
		t.Fatal("bad statement did not error")
	}
	m := sampleMap(db)
	if got := m["systemr_statements_total"].Value; got != 5 {
		t.Fatalf("statements_total = %g, want 5", got)
	}
	if got := m["systemr_statement_errors_total"].Value; got != 1 {
		t.Fatalf("statement_errors_total = %g, want 1", got)
	}
	if got := m["systemr_statement_seconds"].Count; got != 5 {
		t.Fatalf("statement_seconds count = %d, want 5", got)
	}
	// Two compilations timed: the good SELECT and the failing one (which
	// parses, then dies in semantic analysis inside the timed compile).
	if got := m["systemr_compile_seconds"].Count; got != 2 {
		t.Fatalf("compile_seconds count = %d, want 2", got)
	}
	// The SELECT returned 3 rows and cost > 0 in the paper's units.
	if got := m["systemr_statement_rows_total"].Value; got != 3 {
		t.Fatalf("statement_rows_total = %g, want 3", got)
	}
	if got := m["systemr_statement_cost_total"].Value; got <= 0 {
		t.Fatalf("statement_cost_total = %g, want > 0", got)
	}
}

// TestMetricsCollectGauges checks the collect-on-scrape gauges reflect live
// engine state: buffer-pool counters and hit ratio, plan-cache counters, and
// the configured W.
func TestMetricsCollectGauges(t *testing.T) {
	db := systemr.Open(systemr.Config{W: 0.05})
	db.MustExec("CREATE TABLE T (A INTEGER)")
	db.MustExec("INSERT INTO T VALUES (1), (2), (3)")
	// Analyze so the cached plan's estimate is exact — the unanalyzed
	// default NCARD (100) would miss the 3-row actual by 33× and the
	// feedback loop would recompile the repeat instead of serving the hit.
	db.MustExec("UPDATE STATISTICS")
	db.MustExec("SELECT A FROM T")
	db.MustExec("SELECT A FROM T")
	m := sampleMap(db)
	if got := m["systemr_cost_w"].Value; got != 0.05 {
		t.Fatalf("cost_w = %g, want 0.05", got)
	}
	reads, fetches := m["systemr_buffer_logical_reads"].Value, m["systemr_buffer_page_fetches"].Value
	if reads <= 0 || fetches <= 0 || fetches > reads {
		t.Fatalf("buffer gauges: reads=%g fetches=%g", reads, fetches)
	}
	wantRatio := 1 - fetches/reads
	if got := m["systemr_buffer_hit_ratio"].Value; got != wantRatio {
		t.Fatalf("hit ratio = %g, want %g", got, wantRatio)
	}
	if got := m["systemr_plan_cache_hits"].Value; got != 1 {
		t.Fatalf("plan_cache_hits = %g, want 1", got)
	}
	if got := m["systemr_plan_cache_entries"].Value; got != 1 {
		t.Fatalf("plan_cache_entries = %g, want 1", got)
	}
	if got := m["systemr_locks_outstanding"].Value; got != 0 {
		t.Fatalf("locks_outstanding = %g, want 0 between statements", got)
	}
}

// TestMetricsGovernorAborts checks a budget-tripped statement lands in both
// the error and governor-abort counters.
func TestMetricsGovernorAborts(t *testing.T) {
	db := systemr.Open(systemr.Config{MaxRowsScanned: 2})
	db.MustExec("CREATE TABLE T (A INTEGER)")
	db.MustExec("INSERT INTO T VALUES (1), (2)")
	if _, err := db.Exec("SELECT T.A FROM T, T T2"); err == nil {
		t.Fatal("budget was not enforced")
	}
	m := sampleMap(db)
	if got := m["systemr_governor_aborts_total"].Value; got != 1 {
		t.Fatalf("governor_aborts_total = %g, want 1", got)
	}
	if got := m["systemr_statement_errors_total"].Value; got != 1 {
		t.Fatalf("statement_errors_total = %g, want 1", got)
	}
}

// TestMetricsLockWaitObserved forces a writer to wait behind another writer
// and checks the lock-wait histogram records the blocked acquisition.
// (Snapshot readers take no table locks, so only writers can wait.)
func TestMetricsLockWaitObserved(t *testing.T) {
	db := systemr.Open(systemr.Config{})
	db.MustExec("CREATE TABLE T (A INTEGER)")
	db.MustExec("INSERT INTO T VALUES (1)")
	held := db.Locks().TryAcquire([]lock.Request{{Table: "T", Mode: lock.Exclusive}})
	if held == nil {
		t.Fatal("could not take the exclusive lock")
	}
	done := make(chan error, 1)
	go func() {
		_, err := db.Exec("UPDATE T SET A = 2 WHERE A = 1")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	held.Release()
	if err := <-done; err != nil {
		t.Fatalf("blocked UPDATE: %v", err)
	}
	m := sampleMap(db)
	if got := m["systemr_lock_wait_seconds"].Count; got < 1 {
		t.Fatalf("lock_wait_seconds count = %d, want >= 1", got)
	}
	if got := m["systemr_lock_wait_seconds"].Value; got <= 0 {
		t.Fatalf("lock_wait_seconds sum = %g, want > 0", got)
	}
}

// TestMetricsWriteTo checks DB.Metrics().WriteTo emits the exposition format
// end to end over a live database.
func TestMetricsWriteTo(t *testing.T) {
	db := systemr.Open(systemr.Config{})
	db.MustExec("CREATE TABLE T (A INTEGER)")
	var sb strings.Builder
	if _, err := db.Metrics().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"# HELP systemr_statements_total",
		"# TYPE systemr_statement_seconds histogram",
		`systemr_statement_seconds_bucket{le="+Inf"} 1`,
		"systemr_buffer_capacity_pages 64",
		"systemr_catalog_version 2",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("exposition lacks %q:\n%s", frag, out)
		}
	}
}

package systemr_test

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentStatements exercises the table-lock layer end to end:
// parallel readers on shared tables, writers on separate tables, and DDL,
// all racing (run under -race in CI). Correctness bar: no panics, no
// errors, and final counts add up.
func TestConcurrentStatements(t *testing.T) {
	db := newEmpDeptJobDB(t)
	db.MustExec("CREATE TABLE LOG1 (N INTEGER)")
	db.MustExec("CREATE TABLE LOG2 (N INTEGER)")

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Readers over the shared EMP table.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := db.Query("SELECT COUNT(*) FROM EMP WHERE DNO = 5"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Writers on disjoint tables (exclusive locks, but not on EMP).
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			table := fmt.Sprintf("LOG%d", g+1)
			for i := 0; i < 25; i++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%d)", table, i)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// A competing writer against the readers' table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO EMP VALUES ('NEW%02d', 5, 5, 1000.0)", i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	// DDL racing with everything (exclusive catalog lock).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := db.Exec("UPDATE STATISTICS"); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	res, err := db.Query("SELECT COUNT(*) FROM LOG1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 25 {
		t.Fatalf("LOG1 count %v", res.Rows[0][0])
	}
	res, err = db.Query("SELECT COUNT(*) FROM EMP WHERE NAME = 'NEW05'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 1 {
		t.Fatalf("EMP insert lost: %v", res.Rows[0][0])
	}
}

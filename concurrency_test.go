package systemr_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"systemr"
)

// TestConcurrentStatements exercises the table-lock layer end to end:
// parallel readers on shared tables, writers on separate tables, and DDL,
// all racing (run under -race in CI). Correctness bar: no panics, no
// errors, and final counts add up.
func TestConcurrentStatements(t *testing.T) {
	db := newEmpDeptJobDB(t)
	db.MustExec("CREATE TABLE LOG1 (N INTEGER)")
	db.MustExec("CREATE TABLE LOG2 (N INTEGER)")

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Readers over the shared EMP table.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := db.Query("SELECT COUNT(*) FROM EMP WHERE DNO = 5"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Writers on disjoint tables (exclusive locks, but not on EMP).
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			table := fmt.Sprintf("LOG%d", g+1)
			for i := 0; i < 25; i++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%d)", table, i)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// A competing writer against the readers' table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO EMP VALUES ('NEW%02d', 5, 5, 1000.0)", i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	// DDL racing with everything (exclusive catalog lock).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := db.Exec("UPDATE STATISTICS"); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	res, err := db.Query("SELECT COUNT(*) FROM LOG1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 25 {
		t.Fatalf("LOG1 count %v", res.Rows[0][0])
	}
	res, err = db.Query("SELECT COUNT(*) FROM EMP WHERE NAME = 'NEW05'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 1 {
		t.Fatalf("EMP insert lost: %v", res.Rows[0][0])
	}
}

// TestConcurrentCancellation hammers QueryContext with very short deadlines
// from many goroutines (run under -race in CI). Any mix of results, timeouts,
// and cancellations is fine; what must hold is that every error is a typed
// governor error, no scan or lock leaks, and the engine stays fully usable.
func TestConcurrentCancellation(t *testing.T) {
	db := newEmpDeptJobDB(t)
	queries := []string{
		"SELECT COUNT(*) FROM EMP E1, EMP E2 WHERE E1.SAL < E2.SAL",
		"SELECT E.NAME, D.DNAME FROM EMP E, DEPT D WHERE E.DNO = D.DNO ORDER BY E.NAME",
		"SELECT COUNT(*) FROM EMP WHERE DNO = 5",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8*20)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				timeout := time.Duration(i%5) * time.Millisecond
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				_, err := db.QueryContext(ctx, queries[(g+i)%len(queries)])
				cancel()
				if err != nil &&
					!errors.Is(err, systemr.ErrCanceled) &&
					!errors.Is(err, systemr.ErrBudgetExceeded) {
					errs <- fmt.Errorf("goroutine %d iter %d: unexpected error %w", g, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := db.Locks().Outstanding(); n != 0 {
		t.Fatalf("%d locks still held after cancellation storm", n)
	}
	// Engine must remain fully usable.
	res, err := db.Query("SELECT COUNT(*) FROM EMP")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 300 {
		t.Fatalf("EMP count after storm: %v", res.Rows[0][0])
	}
}

package systemr_test

// Parallel execution surface tests: EXPLAIN ANALYZE attribution must stay
// exact when segment scans run on worker goroutines (workers post I/O into
// their own attached accumulators; the exchange folds it back in at read
// time), and a cursor closed mid-stream through a Parallel exchange must
// release every worker, scan, and lock. Run under -race in CI.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"systemr"
	"systemr/internal/rss"
	"systemr/internal/testutil"
)

// parallelDB is attributionDB with intra-query parallelism on: the same
// disjoint T1/T2 tables, a pool that holds both working sets, and eight
// workers per eligible segment scan.
func parallelDB(t *testing.T) *systemr.DB {
	t.Helper()
	// ParallelMinPages: 1 — the fixture tables are small; the tests exercise
	// exchange mechanics, not the size threshold (covered in config_test).
	db := systemr.Open(systemr.Config{BufferPages: 4096, DegreeOfParallelism: 8, ParallelMinPages: 1})
	for _, tbl := range []string{"T1", "T2"} {
		db.MustExec(fmt.Sprintf("CREATE TABLE %s (A INTEGER, B INTEGER)", tbl))
		db.MustExec(fmt.Sprintf("CREATE INDEX %s_A ON %s (A)", tbl, tbl))
		for i := 0; i < 200; i += 10 {
			stmt := fmt.Sprintf("INSERT INTO %s VALUES ", tbl)
			for j := i; j < i+10; j++ {
				if j > i {
					stmt += ", "
				}
				stmt += fmt.Sprintf("(%d, %d)", j, (j*7)%100)
			}
			db.MustExec(stmt)
		}
	}
	db.MustExec("UPDATE STATISTICS")
	return db
}

// TestParallelAttributionExact is TestConcurrentAttributionExact with
// DegreeOfParallelism=8: the queries filter on the unindexed column so the
// optimizer picks a segment scan and the post-pass plants an exchange over
// it. Every per-worker partition covers a fixed page range, so each worker
// line's rows and fetches — and therefore the whole rendering — must be
// byte-identical (modulo wall times) solo or racing another statement.
func TestParallelAttributionExact(t *testing.T) {
	testutil.AssertNoLeaks(t)
	db := parallelDB(t)
	queries := []string{
		"SELECT A, B FROM T1 WHERE B < 50",
		"SELECT A FROM T2 WHERE B < 70 ORDER BY B",
	}

	// The plans must actually be parallel, or this test pins nothing.
	for _, q := range queries {
		pl, err := db.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(pl, "PARALLEL degree=8") {
			t.Fatalf("plan for %q did not parallelize:\n%s", q, pl)
		}
	}

	solo := make([]string, len(queries))
	for i, q := range queries {
		if _, err := db.ExplainAnalyze(q); err != nil { // warm pages + plan cache
			t.Fatal(err)
		}
		first, err := db.ExplainAnalyze(q)
		if err != nil {
			t.Fatal(err)
		}
		second, err := db.ExplainAnalyze(q)
		if err != nil {
			t.Fatal(err)
		}
		if scrubTimes(first) != scrubTimes(second) {
			t.Fatalf("query %d is not deterministic solo under parallelism:\n--- first ---\n%s\n--- second ---\n%s", i, first, second)
		}
		solo[i] = scrubTimes(first)
	}

	const goroutinesPerQuery, iters = 2, 10
	var wg sync.WaitGroup
	mismatch := make(chan string, len(queries)*goroutinesPerQuery)
	for i, q := range queries {
		for g := 0; g < goroutinesPerQuery; g++ {
			i, q := i, q
			wg.Add(1)
			go func() {
				defer wg.Done()
				for n := 0; n < iters; n++ {
					out, err := db.ExplainAnalyze(q)
					if err != nil {
						mismatch <- fmt.Sprintf("query %d: %v", i, err)
						return
					}
					if got := scrubTimes(out); got != solo[i] {
						mismatch <- fmt.Sprintf("query %d attribution drifted under concurrency:\n--- solo ---\n%s\n--- concurrent ---\n%s", i, solo[i], got)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(mismatch)
	for m := range mismatch {
		t.Fatal(m)
	}
}

// TestParallelRowsCloseMidStream closes a cursor over a parallel plan after
// reading a handful of rows, while the workers may still be producing:
// Close must stop and join every worker, close every scan, and release the
// statement's locks, leaving no goroutine behind.
func TestParallelRowsCloseMidStream(t *testing.T) {
	testutil.AssertNoLeaks(t)
	db := parallelDB(t)
	baseline := runtime.NumGoroutine()

	stmt, err := db.Prepare("SELECT A, B FROM T1 WHERE B < 90")
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 5; iter++ {
		rows, err := stmt.Open()
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 3; n++ {
			if _, ok, err := rows.Next(); err != nil || !ok {
				t.Fatalf("iter %d row %d: ok=%v err=%v", iter, n, ok, err)
			}
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("mid-stream close: %v", err)
		}
		if open := rss.OpenScans(); open != 0 {
			t.Fatalf("iter %d: %d RSI scans still open after mid-stream close", iter, open)
		}
		if held := db.Locks().Outstanding(); held != 0 {
			t.Fatalf("iter %d: %d locks still held after mid-stream close", iter, held)
		}
	}

	// Workers are joined inside Close; only the exchange's channel-closer
	// goroutine may still be winding down, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines alive, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParallelMinPagesThreshold validates the Config.ParallelMinPages knob:
// an exchange is planted only over segment scans of relations at least that
// many pages long, so small tables never pay worker startup and batch
// hand-off for a scan a single goroutine finishes faster. Zero means the
// default threshold; negative disables the floor entirely.
func TestParallelMinPagesThreshold(t *testing.T) {
	small := func(db *systemr.DB) {
		db.MustExec("CREATE TABLE S (A INTEGER, B INTEGER)")
		db.MustExec("INSERT INTO S VALUES (1, 1), (2, 2), (3, 3)")
		db.MustExec("UPDATE STATISTICS")
	}
	planFor := func(db *systemr.DB, q string) string {
		t.Helper()
		pl, err := db.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}

	// Default threshold: a table of a few rows stays serial...
	db := systemr.Open(systemr.Config{DegreeOfParallelism: 8})
	small(db)
	if pl := planFor(db, "SELECT A FROM S WHERE B < 2"); strings.Contains(pl, "PARALLEL") {
		t.Fatalf("tiny table parallelized under the default threshold:\n%s", pl)
	}
	// ...while a table comfortably above the threshold parallelizes.
	db.MustExec("CREATE TABLE BIG (A INTEGER, B INTEGER)")
	for i := 0; i < 2000; i += 100 {
		stmt := "INSERT INTO BIG VALUES "
		for j := i; j < i+100; j++ {
			if j > i {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, %d)", j, (j*13)%100)
		}
		db.MustExec(stmt)
	}
	db.MustExec("UPDATE STATISTICS")
	if pl := planFor(db, "SELECT A FROM BIG WHERE B < 50"); !strings.Contains(pl, "PARALLEL degree=8") {
		t.Fatalf("large table did not parallelize under the default threshold:\n%s", pl)
	}

	// An explicit floor of one page admits the tiny table.
	db1 := systemr.Open(systemr.Config{DegreeOfParallelism: 8, ParallelMinPages: 1})
	small(db1)
	if pl := planFor(db1, "SELECT A FROM S WHERE B < 2"); !strings.Contains(pl, "PARALLEL degree=8") {
		t.Fatalf("ParallelMinPages=1 did not admit a one-page table:\n%s", pl)
	}

	// Negative disables the floor.
	dbNeg := systemr.Open(systemr.Config{DegreeOfParallelism: 8, ParallelMinPages: -1})
	small(dbNeg)
	if pl := planFor(dbNeg, "SELECT A FROM S WHERE B < 2"); !strings.Contains(pl, "PARALLEL degree=8") {
		t.Fatalf("ParallelMinPages<0 did not disable the floor:\n%s", pl)
	}
}

package systemr_test

import (
	"fmt"
	"strings"
	"testing"

	"systemr"
	"systemr/internal/testutil"
)

// newEmpDeptJobDB loads the paper's Figure 1 schema: EMP, DEPT, JOB with the
// indexes the example discusses.
func newEmpDeptJobDB(t testing.TB) *systemr.DB {
	t.Helper()
	return newEmpDeptJobDBCfg(t, systemr.Config{BufferPages: 32})
}

// newEmpDeptJobDBCfg is newEmpDeptJobDB with an explicit engine
// configuration (tests that pin the paper's pre-histogram estimation model
// pass DisableHistograms).
func newEmpDeptJobDBCfg(t testing.TB, cfg systemr.Config) *systemr.DB {
	t.Helper()
	testutil.AssertNoLeaks(t)
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 32
	}
	db := systemr.Open(cfg)
	db.MustExec("CREATE TABLE EMP (NAME VARCHAR, DNO INTEGER, JOB INTEGER, SAL FLOAT)")
	db.MustExec("CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR, LOC VARCHAR)")
	db.MustExec("CREATE TABLE JOB (JOB INTEGER, TITLE VARCHAR)")
	db.MustExec("CREATE INDEX EMP_DNO ON EMP (DNO)")
	db.MustExec("CREATE INDEX EMP_JOB ON EMP (JOB)")
	db.MustExec("CREATE UNIQUE INDEX DEPT_DNO ON DEPT (DNO)")
	db.MustExec("CREATE UNIQUE INDEX JOB_JOB ON JOB (JOB)")
	jobs := []struct {
		id    int
		title string
	}{{5, "CLERK"}, {6, "TYPIST"}, {9, "SALES"}, {12, "MECHANIC"}}
	for _, j := range jobs {
		db.MustExec(fmt.Sprintf("INSERT INTO JOB VALUES (%d, '%s')", j.id, j.title))
	}
	locs := []string{"DENVER", "SAN JOSE", "TUCSON"}
	for d := 1; d <= 30; d++ {
		db.MustExec(fmt.Sprintf("INSERT INTO DEPT VALUES (%d, 'DEPT%02d', '%s')", d, d, locs[d%3]))
	}
	for e := 0; e < 300; e++ {
		job := jobs[e%4].id
		dno := e%30 + 1
		db.MustExec(fmt.Sprintf("INSERT INTO EMP VALUES ('EMP%03d', %d, %d, %d.0)", e, dno, job, 10000+e*10))
	}
	db.MustExec("UPDATE STATISTICS")
	return db
}

func TestSmokeSingleRelation(t *testing.T) {
	db := newEmpDeptJobDB(t)
	res, err := db.Query("SELECT NAME, SAL FROM EMP WHERE DNO = 7 ORDER BY SAL DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("want 10 rows, got %d", len(res.Rows))
	}
	prev := res.Rows[0][1].(float64)
	for _, r := range res.Rows[1:] {
		if r[1].(float64) > prev {
			t.Fatalf("not sorted descending: %v", res.Rows)
		}
		prev = r[1].(float64)
	}
}

func TestSmokeFigure1Join(t *testing.T) {
	db := newEmpDeptJobDB(t)
	q := `SELECT NAME, TITLE, SAL, DNAME
	      FROM EMP, DEPT, JOB
	      WHERE TITLE='CLERK' AND LOC='DENVER'
	        AND EMP.DNO=DEPT.DNO AND EMP.JOB=JOB.JOB`
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Clerks are JOB=5 (employees 0,4,8,...); Denver departments are
	// d%3 == 0.
	want := 0
	for e := 0; e < 300; e += 4 {
		if (e%30+1)%3 == 0 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("want %d rows, got %d", want, len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].(string) != "CLERK" {
			t.Fatalf("non-clerk in result: %v", r)
		}
	}
	txt, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "JOIN") {
		t.Fatalf("explain lacks a join:\n%s", txt)
	}
	t.Logf("plan:\n%s", txt)
}

func TestSmokeGroupByAndAggregates(t *testing.T) {
	db := newEmpDeptJobDB(t)
	res, err := db.Query("SELECT DNO, COUNT(*), AVG(SAL) FROM EMP GROUP BY DNO ORDER BY DNO")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 30 {
		t.Fatalf("want 30 groups, got %d", len(res.Rows))
	}
	if res.Rows[0][0].(int64) != 1 || res.Rows[0][1].(int64) != 10 {
		t.Fatalf("bad first group: %v", res.Rows[0])
	}
}

func TestSmokeNestedQueries(t *testing.T) {
	db := newEmpDeptJobDB(t)
	res, err := db.Query(
		"SELECT NAME FROM EMP WHERE SAL > (SELECT AVG(SAL) FROM EMP) AND DNO IN (SELECT DNO FROM DEPT WHERE LOC='DENVER')")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("expected some rows")
	}
	// Correlated subquery: employees earning more than their department's
	// average.
	res2, err := db.Query(
		"SELECT NAME FROM EMP X WHERE SAL > (SELECT AVG(SAL) FROM EMP WHERE DNO = X.DNO)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 150 {
		t.Fatalf("want 150 above-dept-average employees, got %d", len(res2.Rows))
	}
}

func TestSmokeDML(t *testing.T) {
	db := newEmpDeptJobDB(t)
	res := db.MustExec("DELETE FROM EMP WHERE DNO = 7")
	if res.Affected != 10 {
		t.Fatalf("want 10 deleted, got %d", res.Affected)
	}
	res = db.MustExec("UPDATE EMP SET SAL = SAL * 2 WHERE DNO = 8")
	if res.Affected != 10 {
		t.Fatalf("want 10 updated, got %d", res.Affected)
	}
	q, err := db.Query("SELECT COUNT(*), MIN(SAL) FROM EMP WHERE DNO = 8")
	if err != nil {
		t.Fatal(err)
	}
	if q.Rows[0][0].(int64) != 10 {
		t.Fatalf("bad count after update: %v", q.Rows[0])
	}
	if q.Rows[0][1].(float64) < 20000 {
		t.Fatalf("salary not doubled: %v", q.Rows[0])
	}
}

func TestUpdateStatisticsPerTable(t *testing.T) {
	db := newEmpDeptJobDB(t)
	db.MustExec("INSERT INTO DEPT VALUES (99, 'NEW', 'NOWHERE')")
	// Refresh only JOB: DEPT's stats stay stale.
	db.MustExec("UPDATE STATISTICS JOB")
	dept, _ := db.Catalog().Table("DEPT")
	if dept.Stats.NCard != 30 {
		t.Fatalf("DEPT stats should be stale at 30, got %d", dept.Stats.NCard)
	}
	db.MustExec("UPDATE STATISTICS DEPT")
	if dept.Stats.NCard != 31 {
		t.Fatalf("DEPT stats should now be 31, got %d", dept.Stats.NCard)
	}
	if _, err := db.Exec("UPDATE STATISTICS NOPE"); err == nil {
		t.Fatal("unknown table must fail")
	}
}

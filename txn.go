package systemr

// Multi-statement transactions. System R ran every statement inside a
// transaction whose locks were "held to the end of the transaction" and whose
// recovery subsystem could undo it; this layer reproduces that at the engine's
// granularity: a Txn owns table locks under strict two-phase locking and an
// undo log of every mutation, so COMMIT publishes all of its statements and
// ROLLBACK (or an engine abort after a deadlock) reverts all of them.
//
// A Txn is a single session: its methods must not be called concurrently
// with each other (a mutex serializes them defensively), though many Txns —
// each on its own goroutine — run concurrently against one DB, coordinated
// by the lock manager.

import (
	"context"
	"fmt"
	"sync"

	"systemr/internal/txn"
)

// Txn is an explicit multi-statement transaction. Statements executed on it
// accumulate locks (released at Commit/Rollback, never earlier) and undo
// records (applied in reverse on Rollback). If the engine aborts the
// transaction — deadlock victim or lock timeout — its work is already rolled
// back and every further statement fails with ErrTxnAborted until the
// session acknowledges via Rollback; the transaction is then retryable from
// Begin.
type Txn struct {
	db *DB
	mu sync.Mutex
	t  *txn.Txn
}

// Begin starts a transaction. The API-level equivalent of executing BEGIN on
// a Conn.
func (db *DB) Begin() *Txn {
	t := db.beginTxn()
	db.activeTxns.Add(1)
	if m := db.metrics; m != nil {
		m.txnBegins.Inc()
	}
	return &Txn{db: db, t: t}
}

// Exec runs one statement inside the transaction.
func (x *Txn) Exec(text string) (*Result, error) {
	return x.ExecContext(context.Background(), text)
}

// ExecContext is Exec observing ctx. A failed statement (error, cancellation,
// budget, contained panic) is undone back to its own start; the transaction
// stays active and usable. Only a deadlock or lock-timeout abort takes the
// whole transaction down.
func (x *Txn) ExecContext(ctx context.Context, text string) (*Result, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.db.execText(ctx, x.t, text)
}

// Query is Exec restricted to statements that return rows.
func (x *Txn) Query(text string) (*Result, error) {
	return x.QueryContext(context.Background(), text)
}

// QueryContext is Query observing ctx.
func (x *Txn) QueryContext(ctx context.Context, text string) (*Result, error) {
	res, err := x.ExecContext(ctx, text)
	if err != nil {
		return nil, err
	}
	if res.Columns == nil {
		return nil, fmt.Errorf("systemr: statement is not a query: %s", text)
	}
	return res, nil
}

// Commit makes the transaction's mutations permanent and releases its locks.
// Committing a transaction the engine aborted returns an error wrapping
// ErrTxnAborted — the work is already rolled back and cannot be committed.
// Commit is idempotent: calling it again after the transaction finished
// (either way) returns nil.
func (x *Txn) Commit() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	switch x.t.State() {
	case txn.Finished:
		return nil
	case txn.Aborted:
		x.t.Finish()
		return fmt.Errorf("systemr: cannot commit: %w", ErrTxnAborted)
	}
	x.t.Finish()
	// Deregister before releasing locks: the transaction's exclusive locks
	// still exclude writers at the instant its versions become "committed"
	// to the registry, so snapshot order matches lock-serialization order.
	x.db.txns.Finish(x.t.Reg())
	x.t.Locks.ReleaseAll()
	x.db.activeTxns.Add(-1)
	if m := x.db.metrics; m != nil {
		m.txnCommits.Inc()
	}
	if x.t.Mutations() > 0 {
		x.db.noteCommit()
	}
	return nil
}

// Rollback undoes every statement of the transaction (newest first) and
// releases its locks. It is idempotent and always safe: after Commit it is a
// no-op, and after an engine abort it simply acknowledges the rollback the
// engine already performed.
func (x *Txn) Rollback() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	switch x.t.State() {
	case txn.Finished, txn.Aborted:
		x.t.Finish()
		return nil
	}
	err := x.t.UndoAll()
	x.t.Finish()
	// Deregister only after the undo completed: mid-rollback, this
	// transaction's XID must still read as active to every snapshot.
	x.db.txns.Finish(x.t.Reg())
	x.t.Locks.ReleaseAll()
	x.db.activeTxns.Add(-1)
	if m := x.db.metrics; m != nil {
		m.txnRollbacks.Inc()
	}
	return err
}

// Aborted reports whether the engine rolled the transaction back (deadlock
// victim or lock timeout) and is waiting for the session to acknowledge with
// Rollback.
func (x *Txn) Aborted() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.t.State() == txn.Aborted
}

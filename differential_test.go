package systemr_test

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"systemr"
	"systemr/internal/core"
	"systemr/internal/exec"
	"systemr/internal/sem"
	"systemr/internal/sql"
	"systemr/internal/testutil"
	"systemr/internal/value"
	"systemr/internal/workload"
)

// runPlanned analyzes, optimizes (with the given config), and executes a
// SELECT, returning raw rows.
func runPlanned(t *testing.T, db *systemr.DB, query string, cfg core.Config) ([]value.Row, *sem.Block) {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	blk, err := sem.Analyze(stmt.(*sql.SelectStmt), db.Catalog())
	if err != nil {
		t.Fatalf("analyze %q: %v", query, err)
	}
	q, err := core.New(db.Catalog(), cfg).Optimize(blk)
	if err != nil {
		t.Fatalf("optimize %q: %v", query, err)
	}
	rows, _, err := exec.RunQuery(db.Runtime(), q)
	if err != nil {
		t.Fatalf("execute %q: %v\nplan:\n%s", query, err, q.Explain())
	}
	return rows, blk
}

// ablations are the optimizer configurations under which every plan must
// still produce correct results.
func ablations(base core.Config) map[string]core.Config {
	mk := func(f func(*core.Config)) core.Config {
		c := base
		f(&c)
		return c
	}
	return map[string]core.Config{
		"default":     base,
		"noheuristic": mk(func(c *core.Config) { c.DisableJoinHeuristic = true }),
		"noorders":    mk(func(c *core.Config) { c.DisableInterestingOrders = true }),
		"nosargs":     mk(func(c *core.Config) { c.DisableSargs = true }),
		"nlonly":      mk(func(c *core.Config) { c.NestedLoopsOnly = true }),
		"mergeonly":   mk(func(c *core.Config) { c.MergeOnly = true }),
		"tinybuffer":  mk(func(c *core.Config) { c.BufferPages = 2 }),
		"bigW":        mk(func(c *core.Config) { c.W = 10 }),
		"nlonly_nosargs": mk(func(c *core.Config) {
			c.NestedLoopsOnly = true
			c.DisableSargs = true
		}),
		"mergeonly_noorders_tiny": mk(func(c *core.Config) {
			c.MergeOnly = true
			c.DisableInterestingOrders = true
			c.BufferPages = 2
		}),
	}
}

// TestDifferentialRandomQueries cross-checks optimizer+executor output
// against the brute-force reference evaluator over randomized databases and
// queries, under every optimizer ablation. DIFF_SEEDS and DIFF_TABLES extend
// the campaign (e.g. DIFF_SEEDS=300 go test -run TestDifferentialRandom).
func TestDifferentialRandomQueries(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 6
	}
	if env := os.Getenv("DIFF_SEEDS"); env != "" {
		fmt.Sscanf(env, "%d", &seeds)
	}
	tables := 3
	if env := os.Getenv("DIFF_TABLES"); env != "" {
		fmt.Sscanf(env, "%d", &tables)
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(seed)))
			db := workload.RandomDB(rnd, workload.RandomDBConfig{Tables: tables, MaxRows: 25})
			for qi := 0; qi < 12; qi++ {
				nTables := 1 + rnd.Intn(tables)
				query := workload.RandomQuery(rnd, db, nTables, qi%3 == 0)
				// Reference result (computed once per query).
				stmt, err := sql.Parse(query)
				if err != nil {
					t.Fatalf("parse %q: %v", query, err)
				}
				blk, err := sem.Analyze(stmt.(*sql.SelectStmt), db.Catalog())
				if err != nil {
					t.Fatalf("analyze %q: %v", query, err)
				}
				want, err := testutil.RunBlock(db.Catalog().Disk(), blk)
				if err != nil {
					t.Fatalf("reference %q: %v", query, err)
				}
				for name, cfg := range ablations(db.OptimizerConfig()) {
					got, _ := runPlanned(t, db, query, cfg)
					if !testutil.SameMultiset(got, want) {
						q, _ := core.New(db.Catalog(), cfg).Optimize(blk)
						t.Fatalf("config %s: result mismatch for %q\nwant %d rows, got %d rows\nplan:\n%s",
							name, query, len(want), len(got), q.Explain())
					}
				}
			}
		})
	}
}

// TestDifferentialEmpDeptJob cross-checks a battery of handwritten queries
// (the shapes the paper discusses) on the Figure 1 schema.
func TestDifferentialEmpDeptJob(t *testing.T) {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 300, Depts: 20, Jobs: 8, Seed: 42})
	queries := []string{
		workload.Figure1Query,
		"SELECT NAME FROM EMP WHERE SAL > 30000",
		"SELECT NAME FROM EMP WHERE DNO = 7 AND JOB = 3",
		"SELECT NAME FROM EMP WHERE DNO = 7 OR JOB = 3",
		"SELECT NAME FROM EMP WHERE SAL BETWEEN 20000 AND 30000 AND DNO IN (1, 2, 3)",
		"SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER' ORDER BY NAME",
		"SELECT DNO, COUNT(*), AVG(SAL) FROM EMP GROUP BY DNO ORDER BY DNO",
		"SELECT LOC, COUNT(*) FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO GROUP BY LOC",
		"SELECT DISTINCT JOB FROM EMP WHERE SAL > 25000",
		"SELECT NAME FROM EMP WHERE SAL = (SELECT MAX(SAL) FROM EMP)",
		"SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO FROM DEPT WHERE LOC = 'DENVER')",
		"SELECT NAME FROM EMP X WHERE SAL > (SELECT AVG(SAL) FROM EMP WHERE DNO = X.DNO)",
		"SELECT NAME FROM EMP X WHERE SAL > (SELECT SAL FROM EMP WHERE EMPNO = X.MANAGER)",
		"SELECT TITLE, MIN(SAL), MAX(SAL) FROM EMP, JOB WHERE EMP.JOB = JOB.JOB GROUP BY TITLE ORDER BY TITLE DESC",
		"SELECT NAME FROM EMP WHERE NOT (SAL < 20000 OR SAL > 40000) AND JOB <> 2",
		"SELECT E.NAME, M.NAME FROM EMP E, EMP M WHERE E.MANAGER = M.EMPNO AND E.SAL > M.SAL",
		// A predicate spanning three relations stays residual at the final join.
		"SELECT E.NAME FROM EMP E, DEPT D, JOB J WHERE E.DNO = D.DNO AND E.JOB = J.JOB AND E.SAL + D.DNO > J.JOB * 1000",
		// Non-equi join predicate pushed as a parameterized range SARG.
		"SELECT E.NAME FROM EMP E, DEPT D WHERE E.DNO < D.DNO AND D.DNO = 3",
		// Two equi-join predicates between the same pair: one becomes the
		// merge predicate, the other an ordinary (residual) predicate.
		"SELECT E.NAME FROM EMP E, EMP M WHERE E.MANAGER = M.EMPNO AND E.JOB = M.JOB",
	}
	for _, query := range queries {
		stmt, err := sql.Parse(query)
		if err != nil {
			t.Fatalf("parse %q: %v", query, err)
		}
		blk, err := sem.Analyze(stmt.(*sql.SelectStmt), db.Catalog())
		if err != nil {
			t.Fatalf("analyze %q: %v", query, err)
		}
		want, err := testutil.RunBlock(db.Catalog().Disk(), blk)
		if err != nil {
			t.Fatalf("reference %q: %v", query, err)
		}
		for name, cfg := range ablations(db.OptimizerConfig()) {
			got, _ := runPlanned(t, db, query, cfg)
			if !testutil.SameMultiset(got, want) {
				q, _ := core.New(db.Catalog(), cfg).Optimize(blk)
				t.Fatalf("config %s: mismatch for %q: want %d rows, got %d\nplan:\n%s",
					name, query, len(want), len(got), q.Explain())
			}
		}
	}
}

// TestOrderByIsHonored verifies that executed output respects ORDER BY even
// when the optimizer picks an index-ordered plan instead of sorting.
func TestOrderByIsHonored(t *testing.T) {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 400, Depts: 25, Seed: 7})
	for _, query := range []string{
		"SELECT DNO, NAME FROM EMP ORDER BY DNO",
		"SELECT DNO, SAL FROM EMP WHERE SAL > 15000 ORDER BY DNO",
		"SELECT SAL, NAME FROM EMP ORDER BY SAL DESC",
		"SELECT DNO, DNAME FROM DEPT ORDER BY DNO",
	} {
		rows, blk := runPlanned(t, db, query, db.OptimizerConfig())
		if len(rows) == 0 {
			t.Fatalf("%q returned nothing", query)
		}
		// The ORDER BY column is projected first in each of these queries.
		desc := blk.OrderBy[0].Desc
		for i := 1; i < len(rows); i++ {
			cmp := value.Compare(rows[i-1][0], rows[i][0])
			if desc {
				cmp = -cmp
			}
			if cmp > 0 {
				t.Fatalf("%q: row %d out of order: %v then %v", query, i, rows[i-1], rows[i])
			}
		}
	}
}

// TestCrossCorrelatedSubqueryInJoin covers the factor-dependency bug where a
// subquery correlates on a different relation of the same block: the factor
// must wait until that relation is joined.
func TestCrossCorrelatedSubqueryInJoin(t *testing.T) {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 200, Depts: 10, Jobs: 5, Seed: 83})
	queries := []string{
		// The subquery correlates on D, the compared column is on E.
		`SELECT E.NAME FROM EMP E, DEPT D
		 WHERE E.DNO = D.DNO AND E.SAL > (SELECT AVG(SAL) FROM EMP WHERE DNO = D.DNO)`,
		// Correlates on both relations.
		`SELECT E.NAME FROM EMP E, DEPT D
		 WHERE E.DNO = D.DNO AND 0 < (SELECT COUNT(*) FROM JOB WHERE JOB = E.JOB AND TITLE <> D.LOC)`,
	}
	for _, query := range queries {
		stmt, err := sql.Parse(query)
		if err != nil {
			t.Fatal(err)
		}
		blk, err := sem.Analyze(stmt.(*sql.SelectStmt), db.Catalog())
		if err != nil {
			t.Fatal(err)
		}
		want, err := testutil.RunBlock(db.Catalog().Disk(), blk)
		if err != nil {
			t.Fatal(err)
		}
		for name, cfg := range ablations(db.OptimizerConfig()) {
			got, _ := runPlanned(t, db, query, cfg)
			if !testutil.SameMultiset(got, want) {
				t.Fatalf("config %s: mismatch for %q: want %d rows, got %d", name, query, len(want), len(got))
			}
		}
	}
}

package systemr

// White-box tests for the execution-knob policy on the plan-cache key: the
// degree of parallelism is baked into compiled plans (the exchange placement
// is a compile-time post-pass), so it must salt the key; the batch size is
// execution-only (the same plan runs at any batch size), so it must not.

import "testing"

func TestPlanKeyKnobPolicy(t *testing.T) {
	const norm = "SELECT A FROM T WHERE B < ?"
	serial := Open(Config{})
	par8 := Open(Config{DegreeOfParallelism: 8})
	par4 := Open(Config{DegreeOfParallelism: 4})
	batched := Open(Config{ExecBatchSize: 16})

	if serial.planKey(norm, "sig") == par8.planKey(norm, "sig") {
		t.Fatal("DegreeOfParallelism=8 did not salt the plan-cache key: a serial DB's cached plan would satisfy a parallel lookup")
	}
	if par4.planKey(norm, "sig") == par8.planKey(norm, "sig") {
		t.Fatal("different parallel degrees share a plan-cache key")
	}
	if serial.planKey(norm, "sig") != batched.planKey(norm, "sig") {
		t.Fatal("ExecBatchSize changed the plan-cache key: batch size is execution-only and must not fragment the cache")
	}
}

// TestConfigKnobValidation pins the zero-value behavior: both knobs default
// rather than reject, so the zero Config keeps working.
func TestConfigKnobValidation(t *testing.T) {
	for _, cfg := range []Config{{}, {ExecBatchSize: -5, DegreeOfParallelism: -3}} {
		db := Open(cfg)
		if db.cfg.ExecBatchSize <= 0 {
			t.Fatalf("ExecBatchSize not defaulted: %d", db.cfg.ExecBatchSize)
		}
		if db.cfg.DegreeOfParallelism != 1 {
			t.Fatalf("DegreeOfParallelism not clamped to serial: %d", db.cfg.DegreeOfParallelism)
		}
	}
}

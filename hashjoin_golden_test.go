package systemr_test

// Hash-join plan-selection goldens on the paper's EMP/DEPT/JOB schema. The
// hash join is a third costed join method, not a hint: with no useful order
// downstream its cost formula (build-side pages plus W per build row, then
// the probe side) undercuts the sort-both-sides merge plan, but the moment
// an ORDER BY makes the merge output's order interesting, merge must win
// again — a hash join produces no order, so its plan pays a full extra sort.

import (
	"strings"
	"testing"
)

// TestExplainGoldenHashJoinWins pins the plan where hash wins on cost: no
// ORDER BY, so no interesting order reaches the root and the cheapest
// unordered plan takes it. The hash plan beats the merge alternative, which
// would sort both 75-row inputs for nothing. The histogram makes the TITLE =
// 'CLERK' estimate exact (1/4 of JOB's 4 titles, so 75 rows out of the
// joins, not the old 1/10 default's 30). TestExplainAnalyzeGolden in
// analyze_test.go pins the same query's measured actuals.
func TestExplainGoldenHashJoinWins(t *testing.T) {
	db := newEmpDeptJobDB(t)
	got, err := db.Explain("SELECT E.NAME, D.DNAME, J.TITLE FROM EMP E, DEPT D, JOB J " +
		"WHERE E.DNO = D.DNO AND E.JOB = J.JOB AND J.TITLE = 'CLERK'")
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"QUERY BLOCK (main)",
		"  PROJECT E.NAME, D.DNAME, J.TITLE  {cost: pages=3.8 rsi=211.0, rows=75.0}",
		"    HASHJOIN build inner[1.0] probe outer[0.1]  {cost: pages=3.8 rsi=211.0, rows=75.0}",
		"      NLJOIN bind: $3=outer[2.0]  {cost: pages=2.8 rsi=76.0, rows=75.0}",
		"        SEGSCAN J (JOB) sarg: (c1 = 'CLERK')  {cost: pages=1.0 rsi=1.0, rows=1.0}",
		"        INDEXSCAN E via EMP_JOB(JOB) key:[$3 .. $3] sarg: (c2 = $3)  {cost: pages=1.8 rsi=75.0, rows=75.0}",
		"      SEGSCAN D (DEPT)  {cost: pages=1.0 rsi=30.0, rows=30.0}",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("hash-join golden plan drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainGoldenMergeWinsOnOrder pins the counterweight: ORDER BY E.JOB
// makes the join column's order interesting, the merge join delivers it for
// free, and the hash plan — cheaper before the order is charged — would need
// a 300-row sort on top. Section 4's interesting-order machinery must keep
// the ordered merge plan alive through the DP and pick it at the root.
func TestExplainGoldenMergeWinsOnOrder(t *testing.T) {
	db := newEmpDeptJobDB(t)
	got, err := db.Explain("SELECT E.NAME, D.DNAME, J.TITLE FROM EMP E, DEPT D, JOB J " +
		"WHERE E.DNO = D.DNO AND E.JOB = J.JOB ORDER BY E.JOB")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got, "HASHJOIN") {
		t.Fatalf("hash join produces no order: ORDER BY on the join column must pick merge:\n%s", got)
	}
	want := strings.Join([]string{
		"QUERY BLOCK (main)",
		"  PROJECT E.NAME, D.DNAME, J.TITLE  {cost: pages=39.0 rsi=942.0, rows=300.0}",
		"    MERGEJOIN on outer[0.2] = inner[2.0]  {cost: pages=39.0 rsi=942.0, rows=300.0}",
		"      SORT into temp list by [0.2]  {cost: pages=36.0 rsi=930.0, rows=300.0}",
		"        NLJOIN bind: $2=outer[1.0]  {cost: pages=8.0 rsi=330.0, rows=300.0}",
		"          SEGSCAN D (DEPT)  {cost: pages=1.0 rsi=30.0, rows=30.0}",
		"          INDEXSCAN E via EMP_DNO(DNO) key:[$2 .. $2] sarg: (c1 = $2)  {cost: pages=0.2 rsi=10.0, rows=10.0}",
		"      SORT into temp list by [2.0]  {cost: pages=3.0 rsi=12.0, rows=4.0}",
		"        SEGSCAN J (JOB)  {cost: pages=1.0 rsi=4.0, rows=4.0}",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("merge-wins golden plan drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainAnalyzeGoldenMergeWinsOnOrder pins the merge-wins query's
// measured actuals from a cold cache: merge output order satisfies the
// ORDER BY with no root sort, and every line's rows/loops/fetches are the
// deterministic values.
func TestExplainAnalyzeGoldenMergeWinsOnOrder(t *testing.T) {
	db := newEmpDeptJobDB(t)
	db.Pool().Flush()
	got, err := db.ExplainAnalyze("SELECT E.NAME, D.DNAME, J.TITLE FROM EMP E, DEPT D, JOB J " +
		"WHERE E.DNO = D.DNO AND E.JOB = J.JOB ORDER BY E.JOB")
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"QUERY BLOCK (main)",
		"  PROJECT E.NAME, D.DNAME, J.TITLE  {est rows=300.0 cost=70.1 | act rows=300 fetches=0 time=X}",
		"    MERGEJOIN on outer[0.2] = inner[2.0]  {est rows=300.0 cost=70.1 | act rows=300 fetches=0 time=X}",
		"      SORT into temp list by [0.2]  {est rows=300.0 cost=66.7 | act rows=300 fetches=5 time=X}",
		"        NLJOIN bind: $2=outer[1.0]  {est rows=300.0 cost=18.9 | act rows=300 fetches=0 time=X}",
		"          SEGSCAN D (DEPT)  {est rows=30.0 cost=2.0 | act rows=30 fetches=1 time=X}",
		"          INDEXSCAN E via EMP_DNO(DNO) key:[$2 .. $2] sarg: (c1 = $2)  {est rows=10.0 cost=0.6 | act rows=300 loops=30 fetches=7 time=X}",
		"      SORT into temp list by [2.0]  {est rows=4.0 cost=3.4 | act rows=4 fetches=1 time=X}",
		"        SEGSCAN J (JOB)  {est rows=4.0 cost=1.1 | act rows=4 fetches=1 time=X}",
		"statement: fetches=15 writes=6 rsi=942 cost=52.1 (W=0.033)",
		"",
	}, "\n")
	if scrubTimes(got) != want {
		t.Fatalf("merge-wins EXPLAIN ANALYZE golden drifted.\n--- got ---\n%s\n--- want ---\n%s", scrubTimes(got), want)
	}
}

package systemr_test

import (
	"strings"
	"testing"

	"systemr"
)

func TestPublicAPIErrors(t *testing.T) {
	db := systemr.Open(systemr.Config{})
	cases := []struct{ stmt, frag string }{
		{"SELECT x FROM nope", "does not exist"},
		{"FROB TABLE x", "expected a statement"},
		{"INSERT INTO nope VALUES (1)", "does not exist"},
		{"CREATE TABLE t (a INTEGER); CREATE TABLE u (a INTEGER)", "unexpected"},
		{"INSERT INTO t VALUES (a)", ""}, // t doesn't exist yet either way
	}
	for _, c := range cases {
		_, err := db.Exec(c.stmt)
		if err == nil {
			t.Fatalf("%q should fail", c.stmt)
		}
		if c.frag != "" && !strings.Contains(err.Error(), c.frag) {
			t.Fatalf("%q: error %q lacks %q", c.stmt, err, c.frag)
		}
	}
	db.MustExec("CREATE TABLE t (a INTEGER)")
	if _, err := db.Exec("INSERT INTO t VALUES (a)"); err == nil ||
		!strings.Contains(err.Error(), "constant expressions") {
		t.Fatalf("non-constant VALUES: %v", err)
	}
	if _, err := db.Query("INSERT INTO t VALUES (1)"); err == nil ||
		!strings.Contains(err.Error(), "not a query") {
		t.Fatalf("Query on DML: %v", err)
	}
	// EXPLAIN now covers DML; DDL remains unsupported.
	if _, err := db.Exec("EXPLAIN CREATE TABLE z (a INTEGER)"); err == nil {
		t.Fatal("EXPLAIN DDL must fail")
	}
}

func TestInsertConstantArithmetic(t *testing.T) {
	db := systemr.Open(systemr.Config{})
	db.MustExec("CREATE TABLE t (a INTEGER, b FLOAT)")
	db.MustExec("INSERT INTO t VALUES (2 * 3 + 1, -(1.5 + 1))")
	res, err := db.Query("SELECT a, b FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 7 || res.Rows[0][1].(float64) != -2.5 {
		t.Fatalf("constant folding: %v", res.Rows[0])
	}
}

func TestFormatResult(t *testing.T) {
	db := systemr.Open(systemr.Config{})
	db.MustExec("CREATE TABLE t (name VARCHAR, n INTEGER)")
	db.MustExec("INSERT INTO t VALUES ('long-name-here', 1), ('x', NULL)")
	res, _ := db.Query("SELECT NAME, N FROM t")
	out := systemr.FormatResult(res)
	for _, frag := range []string{"NAME", "long-name-here", "NULL", "(2 rows)"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("formatted output lacks %q:\n%s", frag, out)
		}
	}
	ddl := db.MustExec("CREATE TABLE u (a INTEGER)")
	if !strings.Contains(systemr.FormatResult(ddl), "OK") {
		t.Fatal("DDL result format")
	}
}

func TestTablesListing(t *testing.T) {
	db := systemr.Open(systemr.Config{})
	db.MustExec("CREATE TABLE z (a INTEGER)")
	db.MustExec("CREATE TABLE a (x VARCHAR)")
	db.MustExec("CREATE UNIQUE CLUSTERED INDEX a_x ON a (x)")
	db.MustExec("UPDATE STATISTICS")
	out := db.Tables()
	if !strings.Contains(out, "A (X VARCHAR)") || !strings.Contains(out, "Z (A INTEGER)") {
		t.Fatalf("listing:\n%s", out)
	}
	if strings.Index(out, "A (") > strings.Index(out, "Z (") {
		t.Fatal("tables must list sorted")
	}
	if !strings.Contains(out, "UNIQUE CLUSTERED") {
		t.Fatalf("index flags missing:\n%s", out)
	}
}

func TestMustExecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustExec must panic on error")
		}
	}()
	systemr.Open(systemr.Config{}).MustExec("SELECT broken")
}

func TestExecStatsCost(t *testing.T) {
	s := systemr.ExecStats{PageFetches: 10, PagesWritten: 5, RSICalls: 300}
	if got := s.Cost(0.1); got != 45 {
		t.Fatalf("cost = %v", got)
	}
}

// TestWeightingFactorChangesChoice: with a huge W (CPU-dominant), plans that
// save RSI calls win even at more page fetches; with W=~0 (I/O only), the
// page-light plan wins. Both must run correctly.
func TestWeightingFactorChangesChoice(t *testing.T) {
	for _, w := range []float64{0.000001, 5} {
		db := systemr.Open(systemr.Config{W: w})
		db.MustExec("CREATE TABLE t (a INTEGER, b INTEGER)")
		for i := 0; i < 500; i++ {
			db.MustExec("INSERT INTO t VALUES (" +
				strings.Repeat("", 0) + itoa(i%50) + ", " + itoa(i) + ")")
		}
		db.MustExec("CREATE INDEX t_a ON t (a)")
		db.MustExec("UPDATE STATISTICS")
		res, err := db.Query("SELECT b FROM t WHERE a = 7")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 10 {
			t.Fatalf("W=%v: %d rows", w, len(res.Rows))
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

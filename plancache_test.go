package systemr_test

// Plan cache regression tests: the compile-once/execute-many contract. A
// repeated statement must skip parse/sem/optimize entirely (asserted through
// the pipeline's compilation counter), and no statement — ad hoc or prepared
// — may ever execute a plan compiled before a DDL statement or statistics
// refresh (asserted through EXPLAIN plan flips and the invalidation counter).

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"systemr"
	"systemr/internal/workload"
)

func empDB(t testing.TB) *systemr.DB {
	t.Helper()
	return workload.NewEmpDB(workload.EmpConfig{Emps: 2000, Depts: 50, Jobs: 10, Seed: 11})
}

// TestPlanCacheHitSkipsCompilation: the second execution of an identical
// statement is served from the cache — the optimizer does not run again —
// and text differences that normalize away (case, whitespace, comments,
// trailing semicolon) still hit.
func TestPlanCacheHitSkipsCompilation(t *testing.T) {
	db := empDB(t)
	const q = "SELECT NAME FROM EMP WHERE EMPNO = 100"
	res1, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	after1 := db.PlanCacheStats()
	if after1.Misses < 1 {
		t.Fatalf("first execution should miss: %+v", after1)
	}
	// Keyword case, whitespace, comments, and trailing semicolons normalize
	// away; identifier spelling is part of the key (it names output columns).
	for _, variant := range []string{
		q,
		"select NAME from EMP where EMPNO = 100;",
		"  SELECT NAME\n FROM EMP -- comment\n WHERE EMPNO = 100",
	} {
		res2, err := db.Query(variant)
		if err != nil {
			t.Fatalf("%q: %v", variant, err)
		}
		if fmt.Sprint(res2.Rows) != fmt.Sprint(res1.Rows) ||
			fmt.Sprint(res2.Columns) != fmt.Sprint(res1.Columns) {
			t.Fatalf("%q: cached result differs: %v vs %v", variant, res2, res1)
		}
	}
	after := db.PlanCacheStats()
	if got := after.Hits - after1.Hits; got != 3 {
		t.Fatalf("hits = %d, want 3: %+v", got, after)
	}
	if after.Compilations != after1.Compilations {
		t.Fatalf("cache hits recompiled: %d -> %d optimizer runs",
			after1.Compilations, after.Compilations)
	}
}

// TestPlanCacheDisabled: PlanCacheSize < 0 restores recompile-every-time.
func TestPlanCacheDisabled(t *testing.T) {
	db := systemr.Open(systemr.Config{PlanCacheSize: -1})
	db.MustExec("CREATE TABLE T (A INTEGER)")
	db.MustExec("INSERT INTO T VALUES (1)")
	before := db.PlanCacheStats()
	db.MustExec("SELECT A FROM T")
	db.MustExec("SELECT A FROM T")
	after := db.PlanCacheStats()
	if after.Hits != 0 || after.Misses != 0 || after.Capacity != 0 {
		t.Fatalf("disabled cache recorded traffic: %+v", after)
	}
	if after.Compilations-before.Compilations != 2 {
		t.Fatalf("disabled cache should compile each run: %+v", after)
	}
}

// TestPlanCacheDropIndexInvalidation is the stale-plan regression test: a
// cached plan probing an index must flip to a segment scan after DROP INDEX,
// and back through an index scan after the index is recreated.
func TestPlanCacheDropIndexInvalidation(t *testing.T) {
	db := empDB(t)
	const q = "SELECT NAME FROM EMP WHERE EMPNO = 100"
	p1, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p1, "INDEXSCAN EMP via EMP_EMPNO") {
		t.Fatalf("expected unique-index probe before drop:\n%s", p1)
	}
	if _, err := db.Query(q); err != nil { // warm the cache with an execution
		t.Fatal(err)
	}
	db.MustExec("DROP INDEX EMP_EMPNO")
	p2, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p2, "EMP_EMPNO") || !strings.Contains(p2, "SEGSCAN EMP") {
		t.Fatalf("stale index-scan plan survived DROP INDEX:\n%s", p2)
	}
	res, err := db.Query(q) // executing the dropped-index plan would be unsound
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows after drop = %d, want 1", len(res.Rows))
	}
	if s := db.PlanCacheStats(); s.Invalidations < 1 {
		t.Fatalf("no invalidation recorded: %+v", s)
	}
	db.MustExec("CREATE UNIQUE INDEX EMP_EMPNO ON EMP (EMPNO)")
	db.MustExec("UPDATE STATISTICS EMP")
	p3, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p3, "INDEXSCAN EMP via EMP_EMPNO") {
		t.Fatalf("plan did not flip back after index recreation:\n%s", p3)
	}
}

// TestPlanCacheUpdateStatisticsInvalidation: a statistics refresh is a
// dependency change — cached plans recompile against the new statistics.
func TestPlanCacheUpdateStatisticsInvalidation(t *testing.T) {
	db := empDB(t)
	const q = "SELECT COUNT(*) FROM EMP WHERE DNO = 7"
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	before := db.PlanCacheStats()
	db.MustExec("UPDATE STATISTICS EMP")
	after := db.PlanCacheStats()
	if after.CatalogVersion != before.CatalogVersion+1 {
		t.Fatalf("UPDATE STATISTICS did not bump the version: %+v -> %+v", before, after)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	final := db.PlanCacheStats()
	if final.Invalidations != before.Invalidations+1 {
		t.Fatalf("stale plan not invalidated after stats refresh: %+v", final)
	}
	if final.Compilations == before.Compilations {
		t.Fatal("stale plan was served without recompilation")
	}
}

// TestExplainCacheNote: EXPLAIN reports when the plan came from the cache,
// and shares the plain SELECT's cache slot.
func TestExplainCacheNote(t *testing.T) {
	db := empDB(t)
	const q = "SELECT NAME FROM EMP WHERE EMPNO = 3"
	cold, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cold, "plan cache: hit") {
		t.Fatalf("cold EXPLAIN claims a cache hit:\n%s", cold)
	}
	warm, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("plan cache: hit (compiled at catalog version %d)",
		db.PlanCacheStats().CatalogVersion)
	if !strings.Contains(warm, want) {
		t.Fatalf("warm EXPLAIN lacks %q:\n%s", want, warm)
	}
	// The EXPLAIN populated the SELECT's slot: executing the SELECT now hits.
	before := db.PlanCacheStats()
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if after := db.PlanCacheStats(); after.Hits != before.Hits+1 {
		t.Fatalf("SELECT did not share EXPLAIN's cache slot: %+v -> %+v", before, after)
	}
}

// TestPreparedStmtRevalidation: a prepared statement must not execute a plan
// compiled before a DDL change — each Run revalidates the catalog version and
// transparently recompiles.
func TestPreparedStmtRevalidation(t *testing.T) {
	db := empDB(t)
	stmt, err := db.Prepare("SELECT NAME FROM EMP WHERE EMPNO = ?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stmt.Explain(), "INDEXSCAN EMP via EMP_EMPNO") {
		t.Fatalf("prepared plan should probe the unique index:\n%s", stmt.Explain())
	}
	v1 := stmt.Version()
	res, err := stmt.Run(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	db.MustExec("DROP INDEX EMP_EMPNO")
	res, err = stmt.Run(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows after DROP INDEX = %d, want 1", len(res.Rows))
	}
	if stmt.Version() <= v1 {
		t.Fatalf("prepared statement still holds the pre-DDL plan (version %d)", stmt.Version())
	}
	if strings.Contains(stmt.Explain(), "EMP_EMPNO") {
		t.Fatalf("recompiled prepared plan still references the dropped index:\n%s", stmt.Explain())
	}
	// Same contract over the streaming cursor.
	db.MustExec("CREATE UNIQUE INDEX EMP_EMPNO ON EMP (EMPNO)")
	rows, err := stmt.Open(42)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("cursor rows = %d, want 1", n)
	}
	if !strings.Contains(stmt.Explain(), "INDEXSCAN EMP via EMP_EMPNO") {
		t.Fatalf("cursor open did not recompile against the recreated index:\n%s", stmt.Explain())
	}
}

// TestPreparedStmtRevalidationNoCache: the same contract with the cache
// disabled — revalidation is the statement's own duty then.
func TestPreparedStmtRevalidationNoCache(t *testing.T) {
	db := workload.NewEmpDB(workload.EmpConfig{
		Emps: 500, Seed: 3, Engine: systemr.Config{PlanCacheSize: -1},
	})
	stmt, err := db.Prepare("SELECT NAME FROM EMP WHERE EMPNO = ?")
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("DROP INDEX EMP_EMPNO")
	if _, err := stmt.Run(7); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stmt.Explain(), "EMP_EMPNO") {
		t.Fatalf("uncached prepared statement executed a stale plan:\n%s", stmt.Explain())
	}
}

// TestPlanCacheConcurrent hammers the cached path from many goroutines while
// DDL and statistics refreshes move the catalog version underneath them —
// the race-enabled guard that no stale plan is ever executed and the cache's
// counters stay coherent. Run with -race in CI.
func TestPlanCacheConcurrent(t *testing.T) {
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 300, Depts: 10, Jobs: 5, Seed: 5})
	queries := []string{
		"SELECT NAME FROM EMP WHERE EMPNO = 17",
		"SELECT COUNT(*) FROM EMP WHERE DNO = 3",
		"SELECT E.NAME, D.DNAME FROM EMP E, DEPT D WHERE E.DNO = D.DNO AND E.EMPNO = 17",
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := queries[(g+i)%len(queries)]
				res, err := db.QueryContext(ctx, q)
				if err != nil {
					t.Errorf("%s: %v", q, err)
					return
				}
				if len(res.Rows) != 1 {
					t.Errorf("%s: rows = %d, want 1", q, len(res.Rows))
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // the antagonist: DDL and stats churn under the readers
		defer wg.Done()
		for i := 0; i < 10; i++ {
			db.MustExec("DROP INDEX EMP_EMPNO")
			db.MustExec("CREATE UNIQUE INDEX EMP_EMPNO ON EMP (EMPNO)")
			db.MustExec("UPDATE STATISTICS EMP")
		}
	}()
	wg.Wait()
	s := db.PlanCacheStats()
	if s.Hits == 0 {
		t.Fatalf("concurrent run recorded no cache hits: %+v", s)
	}
	if db.Locks().Outstanding() != 0 {
		t.Fatal("locks leaked by the concurrent cached path")
	}
}

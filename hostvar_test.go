package systemr_test

import (
	"strings"
	"testing"
)

// TestHostVariables: '?' placeholders bound at Run/Open time — the paper's
// compiled-program model with program-supplied values.
func TestHostVariables(t *testing.T) {
	db := newEmpDeptJobDB(t)
	stmt, err := db.Prepare("SELECT NAME FROM EMP WHERE DNO = ? AND SAL > ? ORDER BY NAME")
	if err != nil {
		t.Fatal(err)
	}
	// The DNO placeholder becomes a deferred index key.
	if !strings.Contains(stmt.Explain(), "EMP_DNO") {
		t.Fatalf("host-variable equality should probe the index:\n%s", stmt.Explain())
	}
	res, err := stmt.Run(7, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("DNO=7: %d rows", len(res.Rows))
	}
	// Same plan, different binding.
	res, err = stmt.Run(8, 999999.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("impossible salary: %d rows", len(res.Rows))
	}
	// Repeated variable positions are distinct placeholders.
	stmt2, err := db.Prepare("SELECT NAME FROM EMP WHERE SAL BETWEEN ? AND ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err = stmt2.Run(10000.0, 10050.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		_ = r
	}

	// Argument-count mismatch is an error.
	if _, err := stmt.Run(7); err == nil || !strings.Contains(err.Error(), "host variable") {
		t.Fatalf("arity mismatch: %v", err)
	}
	if _, err := stmt.Run(7, 0.0, 3); err == nil {
		t.Fatal("too many args must fail")
	}
	// Unsupported type.
	if _, err := stmt.Run([]byte("x"), 0.0); err == nil {
		t.Fatal("unsupported arg type must fail")
	}
	// Direct Query of a '?' statement fails cleanly (no args channel).
	if _, err := db.Query("SELECT NAME FROM EMP WHERE DNO = ?"); err == nil {
		t.Fatal("unbound host variable must fail")
	}
}

// TestHostVariableInSubquery: a '?' inside a nested block flows through as a
// pass-through parameter.
func TestHostVariableInSubquery(t *testing.T) {
	db := newEmpDeptJobDB(t)
	stmt, err := db.Prepare(
		"SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO FROM DEPT WHERE LOC = ?) AND JOB = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Run("DENVER", 5)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for e := 0; e < 300; e += 4 { // JOB=5 employees
		if (e%30+1)%3 == 0 { // Denver departments
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(res.Rows), want)
	}
	// Rebind without re-optimizing.
	res, err = stmt.Run("TUCSON", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("rebinding should find Tucson typists")
	}
	// Streaming with args.
	rows, err := stmt.Open("DENVER", 5)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for {
		_, ok, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != want {
		t.Fatalf("cursor streamed %d, want %d", n, want)
	}
}

// TestHostVariableSameIndexReused: the same '?' appearing once but referenced
// from multiple spots... each '?' is positional; two '?' are two variables.
func TestHostVariablePositional(t *testing.T) {
	db := newEmpDeptJobDB(t)
	stmt, err := db.Prepare("SELECT COUNT(*) FROM EMP WHERE DNO = ? OR JOB = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Run(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) == 0 {
		t.Fatal("expected matches")
	}
}

package systemr_test

import (
	"fmt"

	"systemr"
)

// The examples double as executable documentation: go test verifies their
// output.

func exampleDB() *systemr.DB {
	db := systemr.Open(systemr.Config{})
	db.MustExec("CREATE TABLE EMP (NAME VARCHAR, DNO INTEGER, SAL FLOAT)")
	db.MustExec("CREATE INDEX EMP_DNO ON EMP (DNO)")
	db.MustExec(`INSERT INTO EMP VALUES
		('SMITH', 50, 10000.0), ('JONES', 50, 12000.0),
		('BLAKE', 51, 9000.0), ('ADAMS', 52, 15000.0)`)
	db.MustExec("UPDATE STATISTICS")
	return db
}

func ExampleDB_Query() {
	db := exampleDB()
	res, err := db.Query("SELECT NAME, SAL FROM EMP WHERE DNO = 50 ORDER BY SAL DESC")
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0], row[1])
	}
	// Output:
	// JONES 12000
	// SMITH 10000
}

func ExampleDB_Explain() {
	db := exampleDB()
	plan, err := db.Explain("SELECT NAME FROM EMP WHERE DNO = 51")
	if err != nil {
		panic(err)
	}
	fmt.Print(plan)
	// Output:
	// QUERY BLOCK (main)
	//   PROJECT EMP.NAME  {cost: pages=0.5 rsi=1.0, rows=1.0}
	//     INDEXSCAN EMP via EMP_DNO(DNO) key:[51 .. 51] sarg: (c1 = 51)  {cost: pages=0.5 rsi=1.0, rows=1.0}
}

func ExampleStmt_Open() {
	db := exampleDB()
	stmt, err := db.Prepare("SELECT NAME FROM EMP WHERE SAL > 9500.0 ORDER BY NAME")
	if err != nil {
		panic(err)
	}
	rows, err := stmt.Open() // tuple-at-a-time, as in System R's host programs
	if err != nil {
		panic(err)
	}
	defer rows.Close()
	for {
		row, ok, err := rows.Next()
		if err != nil {
			panic(err)
		}
		if !ok {
			break
		}
		fmt.Println(row[0])
	}
	// Output:
	// ADAMS
	// JONES
	// SMITH
}

func ExampleDB_Exec_aggregation() {
	db := exampleDB()
	res, err := db.Query("SELECT DNO, COUNT(*), AVG(SAL) FROM EMP GROUP BY DNO HAVING COUNT(*) > 1")
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0], row[1], row[2])
	}
	// Output:
	// 50 2 11000
}
